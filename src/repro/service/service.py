"""The concurrent query service: one shared warehouse, many sessions.

:class:`WarehouseService` turns a :class:`~repro.seismology.warehouse.
SeismicWarehouse` from a library object into a *server*: client sessions
submit SQL concurrently, a bounded admission controller keeps the fan-in
fair and finite, a worker pool executes queries, and — in lazy mode —
the extraction layers underneath are wired for concurrency:

* a **single-flight coalescer** so N sessions needing the same (file,
  record) ranges pay for one extraction (\"Fluid ETL\"-style on-demand
  serving under concurrent load);
* a shared **parallel extraction pool** fanning one query's per-file
  work across workers;
* per-session :class:`QueryOutcome` reports that distinguish rows the
  session *extracted here* from rows it obtained by *waiting on another
  session's extraction*.

Scope: the service serves **queries**.  DDL/DML and repository syncs
remain single-writer operations — run them before :meth:`start` or after
:meth:`close` (query-time staleness refresh is the one sanctioned
exception and is internally serialised).
"""

from __future__ import annotations

import itertools
import logging
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

from repro.errors import ServiceClosedError, ServiceError
from repro.obs.http import ObservabilityServer
from repro.obs.journal import query_context
from repro.obs.metrics import MetricsSnapshotter
from repro.obs.slowlog import SlowQueryLog
from repro.service.admission import AdmissionController, AdmissionStats
from repro.service.coalescer import CoalescerStats, ExtractionCoalescer
from repro.service.parallel import ParallelExtractor

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.db.exec.engine import QueryReport
    from repro.seismology.warehouse import SeismicWarehouse

logger = logging.getLogger("repro.service")


@dataclass
class ServiceConfig:
    """Tunables for one service instance."""

    max_workers: int = 4          # query-executing threads
    max_in_flight: Optional[int] = None  # executing queries cap (None = workers)
    queue_depth: int = 128        # bounded admission queue
    fair: bool = True             # per-session round-robin dispatch
    coalesce: bool = True         # single-flight extraction sharing
    extract_workers: int = 0      # 0 disables the per-file fan-out pool
    wait_timeout_s: float = 30.0  # coalesced-wait patience before fallback
    # Sharded scatter-gather execution: >1 brings up (or reuses) the
    # warehouse's shard worker-process pool for the service's lifetime.
    shards: int = 1
    # Adaptive lazy→eager promotion (requires warehouse storage_path):
    promote: bool = False         # own a BackgroundPromoter thread
    promote_interval_s: float = 1.0
    promote_budget_bytes: int = 256 * 1024 * 1024
    promote_min_score: float = 2.0
    promote_max_units: int = 512
    # Observability: served queries feed the warehouse's metrics
    # registry unconditionally; these gate the *extras*.
    slow_query_s: Optional[float] = None  # threshold-gated slow-query log
    metrics_interval_s: float = 0.0       # 0 disables the snapshot thread
    metrics_history: int = 120            # snapshots the thread retains
    # HTTP observability endpoint (/metrics, /healthz, /sys/<table>);
    # None disables it, 0 binds an ephemeral port (service.http_port
    # publishes the resolved one).
    http_port: Optional[int] = None
    http_host: str = "127.0.0.1"
    # TCP query wire protocol (repro.net): None disables it, 0 binds an
    # ephemeral port (service.tcp_port publishes the resolved one).
    # Serving TCP requires at least one pre-shared auth token — either a
    # plain secret string or "principal=secret" to name the principal.
    tcp_port: Optional[int] = None
    tcp_host: str = "127.0.0.1"
    auth_tokens: Sequence[str] = ()
    tcp_max_frame_bytes: int = 16 * 1024 * 1024
    cursor_window_batches: int = 4    # per-cursor server-side batch window
    cursor_stall_timeout_s: float = 30.0  # abort cursors nobody fetches
    tcp_drain_s: float = 5.0          # graceful-drain deadline on close

    def __post_init__(self) -> None:
        if self.max_workers <= 0:
            raise ServiceError("max_workers must be positive")
        if self.max_in_flight is None:
            self.max_in_flight = self.max_workers
        if self.max_in_flight <= 0:
            raise ServiceError("max_in_flight must be positive")
        if self.promote:
            if self.promote_interval_s <= 0:
                raise ServiceError(
                    "promote_interval_s must be positive (0 would "
                    "busy-spin the background promoter)"
                )
            if self.promote_budget_bytes <= 0:
                raise ServiceError("promote_budget_bytes must be positive")
            if self.promote_max_units <= 0:
                raise ServiceError("promote_max_units must be positive")
        if not isinstance(self.shards, int) or isinstance(self.shards, bool) \
                or self.shards < 1:
            raise ServiceError(
                f"shards must be a positive integer, got {self.shards!r}")
        if self.slow_query_s is not None and self.slow_query_s <= 0:
            raise ServiceError("slow_query_s must be positive (or None "
                               "to disable the slow-query log)")
        if self.metrics_interval_s < 0:
            raise ServiceError("metrics_interval_s cannot be negative")
        if self.metrics_history <= 0:
            raise ServiceError("metrics_history must be positive")
        if self.http_port is not None and \
                not (0 <= self.http_port <= 65535):
            raise ServiceError("http_port must be in [0, 65535] "
                               "(or None to disable the endpoint)")
        if self.tcp_port is not None:
            if not (0 <= self.tcp_port <= 65535):
                raise ServiceError("tcp_port must be in [0, 65535] "
                                   "(or None to disable the wire server)")
            tokens = tuple(self.auth_tokens)
            if not tokens:
                raise ServiceError(
                    "serving TCP requires at least one auth token "
                    "(ServiceConfig.auth_tokens) — the wire protocol "
                    "refuses unauthenticated sessions")
            if any(not isinstance(t, str) or not t for t in tokens):
                raise ServiceError("auth tokens must be non-empty strings")
        if self.tcp_max_frame_bytes <= 0:
            raise ServiceError("tcp_max_frame_bytes must be positive")
        if self.cursor_window_batches <= 0:
            raise ServiceError(
                "cursor_window_batches must be positive (the window is "
                "what bounds per-cursor server memory)")
        if self.cursor_stall_timeout_s <= 0:
            raise ServiceError("cursor_stall_timeout_s must be positive")
        if self.tcp_drain_s < 0:
            raise ServiceError("tcp_drain_s cannot be negative")


@dataclass
class QueryOutcome:
    """Everything one served query produced and cost."""

    session_id: str
    sql: str
    result: object                # repro.db.exec.result.Result
    report: "QueryReport"
    trace: list[dict]
    queued_s: float               # admission queue wait
    execute_s: float              # worker execution time
    total_s: float                # submit -> completion

    @property
    def rows_extracted_here(self) -> int:
        return self.report.rows_extracted_here

    @property
    def rows_coalesced(self) -> int:
        return self.report.rows_coalesced


def latency_percentile(latencies_s: list[float], q: float) -> float:
    """Nearest-rank percentile over a latency sample (q in [0, 100]).

    Shared by :class:`ServiceStats` and bench E12 so both always report
    the same statistic.
    """
    if not latencies_s:
        return 0.0
    ordered = sorted(latencies_s)
    rank = min(len(ordered) - 1, max(0, round(q / 100 * (len(ordered) - 1))))
    return ordered[rank]


@dataclass
class ServiceStats:
    """Aggregate service counters (admission + coalescing + latency)."""

    completed: int = 0
    failed: int = 0
    admission: AdmissionStats = field(default_factory=AdmissionStats)
    coalescer: Optional[CoalescerStats] = None
    latencies_s: list[float] = field(default_factory=list)

    def percentile(self, q: float) -> float:
        """Latency percentile over completed queries (q in [0, 100])."""
        return latency_percentile(self.latencies_s, q)


class _QueuedQuery:
    __slots__ = ("session_id", "sql", "params", "future", "submitted_at",
                 "submit_seq", "sink", "batch_rows")

    def __init__(self, session_id: str, sql: str, future: Optional[Future],
                 submit_seq: int, params: object = None, *,
                 sink: object = None,
                 batch_rows: Optional[int] = None) -> None:
        self.session_id = session_id
        self.sql = sql
        self.params = params
        self.future = future
        self.submitted_at = time.perf_counter()
        self.submit_seq = submit_seq
        # Streaming submissions (the TCP wire layer's server-side
        # cursors) carry a sink instead of a future: the worker pushes
        # row batches into it as they are produced.
        self.sink = sink
        self.batch_rows = batch_rows

    def fail(self, exc: BaseException) -> None:
        """Route a pre-execution failure to whoever is waiting."""
        if self.sink is not None:
            self.sink.fail(exc)
        elif self.future is not None:
            self.future.set_exception(exc)


class ClientSession:
    """One client's handle on the service (its fairness unit).

    Exposes the unified cursor protocol: :meth:`cursor` returns the same
    :class:`~repro.api.cursor.Cursor` a direct
    :class:`~repro.api.connection.Connection` hands out, with a private
    :class:`~repro.db.exec.engine.QueryReport` per execution — the
    ``query_with_report`` tuple juggling is not needed here.
    """

    def __init__(self, service: "WarehouseService", session_id: str) -> None:
        self.service = service
        self.session_id = session_id
        self.outcomes: list[QueryOutcome] = []

    def submit(self, sql: str, params: object = None
               ) -> "Future[QueryOutcome]":
        """Enqueue a query; the future resolves to a :class:`QueryOutcome`."""
        return self.service.submit(self.session_id, sql, params)

    def query(self, sql: str, params: object = None) -> QueryOutcome:
        """Submit and block for the outcome (recorded on the session)."""
        outcome = self.submit(sql, params).result()
        self.outcomes.append(outcome)
        return outcome

    def cursor(self):
        """A :class:`~repro.api.cursor.Cursor` executing via the service.

        Queries run remotely on the worker pool (admission-controlled and
        coalesced like any submitted query) and are fetched locally
        through the standard cursor surface; ``cursor.report`` is the
        per-query :class:`QueryReport`.  The service's scope applies:
        SELECT only — DDL/DML raise :class:`ServiceError` here and belong
        on a direct connection before :meth:`WarehouseService.start` or
        after :meth:`WarehouseService.close`.
        """
        from repro.api.cursor import Cursor

        return Cursor(self._run_for_cursor)

    def _run_for_cursor(self, sql: str, params: object, _batch_rows: int):
        from repro.db.exec.engine import CompletedQuery
        from repro.db.sql import ast
        from repro.db.sql.parser import parse_statement

        if not isinstance(parse_statement(sql), ast.SelectStmt):
            raise ServiceError(
                "service sessions serve queries only (SELECT); run "
                "DDL/DML on a direct connection outside the service"
            )
        outcome = self.query(sql, params)
        return CompletedQuery(outcome.result, outcome.report, outcome.trace)


class WarehouseService:
    """Serve one warehouse to many concurrent sessions."""

    def __init__(self, warehouse: "SeismicWarehouse",
                 config: Optional[ServiceConfig] = None,
                 **overrides: object) -> None:
        if config is None:
            config = ServiceConfig(**overrides)  # type: ignore[arg-type]
        elif overrides:
            raise ServiceError("pass either config or keyword overrides")
        self.warehouse = warehouse
        self.config = config
        self.admission: AdmissionController[_QueuedQuery] = AdmissionController(
            queue_depth=config.queue_depth, fair=config.fair,
        )
        self.coalescer: Optional[ExtractionCoalescer] = None
        self.extract_pool: Optional[ParallelExtractor] = None
        self.promoter = None  # BackgroundPromoter when config.promote
        self._sessions: dict[str, ClientSession] = {}
        self._session_counter = itertools.count(1)
        self._submit_counter = itertools.count(1)
        self._in_flight = threading.Semaphore(config.max_in_flight)
        self._workers: list[threading.Thread] = []
        self._stats_lock = threading.Lock()
        self._completed = 0
        self._failed = 0
        self._latencies: list[float] = []
        self._started = False
        self._closed = False
        # Observability: instruments live on the warehouse's registry so
        # one scrape covers storage, ETL and serving together.
        self.metrics = warehouse.metrics_registry
        self._query_seconds = self.metrics.histogram(
            "repro_query_seconds",
            "Served query latency, submit to completion",
            labels=("session",))
        self._queue_wait_seconds = self.metrics.histogram(
            "repro_queue_wait_seconds",
            "Time queries spent in the admission queue")
        self._queries_total = self.metrics.counter(
            "repro_queries_total", "Queries served", labels=("status",))
        self.slow_log = (SlowQueryLog(config.slow_query_s)
                         if config.slow_query_s is not None else None)
        self.snapshotter: Optional[MetricsSnapshotter] = None
        self._service_collector = None
        self.http: Optional[ObservabilityServer] = None
        self.wire = None  # repro.net.server.WireServer when config.tcp_port
        self._close_lock = threading.Lock()
        self.start()

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> None:
        """Install concurrency hooks on the warehouse and spawn workers."""
        if self._started:
            return
        self._owns_sharding = False
        if self.config.shards > 1:
            # Before any binding hooks: ensure_sharding installs its own
            # (remote_extractor, extract_pool) and must see the
            # warehouse's pristine state.
            self._owns_sharding = self.warehouse.ensure_sharding(
                self.config.shards)
        binding = getattr(self.warehouse.pipeline, "binding", None)
        if binding is not None:
            if self.config.coalesce:
                self.coalescer = ExtractionCoalescer()
                binding.coalescer = self.coalescer
            if self.config.extract_workers > 0:
                self.extract_pool = ParallelExtractor(
                    self.config.extract_workers)
                binding.extract_pool = self.extract_pool
            binding.wait_timeout_s = self.config.wait_timeout_s
            if self.config.promote:
                self.promoter = self._build_promoter(binding)
                self.promoter.start()
        elif self.config.promote:
            raise ServiceError(
                "promote=True requires a lazy warehouse (eager/external "
                "modes have no extraction to promote)"
            )
        for i in range(self.config.max_workers):
            worker = threading.Thread(
                target=self._worker_loop,
                name=f"repro-service-{i}",
                daemon=True,
            )
            worker.start()
            self._workers.append(worker)
        self._service_collector = self.metrics.register_collector(
            self._collect_service_metrics)
        if self.config.metrics_interval_s > 0:
            self.snapshotter = MetricsSnapshotter(
                self.metrics, self.config.metrics_interval_s,
                history=self.config.metrics_history)
            self.snapshotter.start()
        if self.config.http_port is not None:
            self.http = ObservabilityServer(
                self, host=self.config.http_host,
                port=self.config.http_port).start()
        if self.config.tcp_port is not None:
            from repro.net.server import WireServer

            self.wire = WireServer(self).start()
        self._started = True
        logger.info(
            "service started: %d workers, queue depth %d, coalesce=%s",
            self.config.max_workers, self.config.queue_depth,
            self.config.coalesce)
        self.warehouse.oplog.record(
            "service", "service started",
            workers=self.config.max_workers,
            queue_depth=self.config.queue_depth,
            coalesce=self.config.coalesce,
            extract_workers=self.config.extract_workers,
        )

    def _build_promoter(self, binding):
        """Wire a BackgroundPromoter over the warehouse's heat + store."""
        from repro.service.promoter import (
            BackgroundPromoter,
            Promoter,
            PromoterConfig,
        )

        self.warehouse._attach_promoted()
        if binding.promoted is None:
            raise ServiceError(
                "promote=True requires the warehouse to have attached "
                "storage (SeismicWarehouse(storage_path=...))"
            )
        promoter = Promoter(
            binding, self.warehouse.pipeline.heat, binding.promoted,
            PromoterConfig(
                budget_bytes=self.config.promote_budget_bytes,
                min_score=self.config.promote_min_score,
                max_units_per_cycle=self.config.promote_max_units,
                interval_s=self.config.promote_interval_s,
            ),
        )
        return BackgroundPromoter(promoter)

    def close(self) -> None:
        """Stop accepting work, finish in-flight queries, detach hooks.

        Idempotent: a second (or concurrent) ``close()`` is a no-op —
        the first caller tears everything down, later callers return
        immediately instead of re-joining already-dead workers.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        if self.wire is not None:
            # Drain the wire first, while workers are still alive to
            # finish in-flight server-side cursors: stop accepting,
            # finish cursors up to the deadline, then abort with a
            # typed shutdown frame.
            self.wire.stop(drain_s=self.config.tcp_drain_s)
        if self.http is not None:
            self.http.stop()
        if self.snapshotter is not None:
            self.snapshotter.stop()
        if self.promoter is not None:
            self.promoter.stop()
        self.admission.close()
        for item in self.admission.drain():
            item.fail(ServiceClosedError("service shut down before execution"))
        for worker in self._workers:
            worker.join()
        binding = getattr(self.warehouse.pipeline, "binding", None)
        if binding is not None:
            if binding.coalescer is self.coalescer:
                binding.coalescer = None
            if binding.extract_pool is self.extract_pool:
                binding.extract_pool = None
        if self.extract_pool is not None:
            self.extract_pool.close()
        if getattr(self, "_owns_sharding", False):
            # This service brought the shard pool up, so it drains and
            # joins the workers now that no query thread can scatter to
            # them — and before any caller proceeds to storage teardown.
            self.warehouse.shutdown_sharding()
            self._owns_sharding = False
        if self._service_collector is not None:
            self.metrics.unregister_collector(self._service_collector)
            self._service_collector = None
        logger.info("service stopped: %d completed, %d failed",
                    self._completed, self._failed)
        self.warehouse.oplog.record(
            "service", "service stopped",
            completed=self._completed, failed=self._failed,
        )

    def __enter__(self) -> "WarehouseService":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- sessions & submission -----------------------------------------------------

    def session(self, name: Optional[str] = None) -> ClientSession:
        """Open a client session (the unit of admission fairness)."""
        session_id = name or f"session-{next(self._session_counter)}"
        with self._stats_lock:
            session = self._sessions.get(session_id)
            if session is None:
                session = ClientSession(self, session_id)
                self._sessions[session_id] = session
            return session

    def submit(self, session_id: str, sql: str, params: object = None
               ) -> "Future[QueryOutcome]":
        if self._closed:
            raise ServiceClosedError("service is shut down")
        future: "Future[QueryOutcome]" = Future()
        item = _QueuedQuery(session_id, sql, future,
                            next(self._submit_counter), params)
        self.admission.submit(session_id, item)
        return future

    def submit_stream(self, session_id: str, sql: str, sink,
                      params: object = None, *,
                      batch_rows: Optional[int] = None) -> None:
        """Enqueue a *streaming* SELECT whose batches feed ``sink``.

        The wire layer's server-side cursors run through here: the same
        admission queue and fairness as :meth:`submit`, but the worker
        pushes row batches into ``sink`` as the engine produces them
        instead of materialising a full result.  ``sink`` must expose
        ``opened(names, dtypes)``, ``push(result) -> bool`` (False stops
        the stream — client gone), ``fail(exc)`` and
        ``finish(report, trace, *, queued_s, execute_s, total_s)``.

        SELECT-only, like :meth:`ClientSession.cursor`: DDL/DML belong
        on a direct connection outside the service.
        """
        from repro.db.sql import ast
        from repro.db.sql.parser import parse_statement

        if self._closed:
            raise ServiceClosedError("service is shut down")
        if not isinstance(parse_statement(sql), ast.SelectStmt):
            raise ServiceError(
                "the wire protocol serves queries only (SELECT); run "
                "DDL/DML on a direct connection outside the service")
        item = _QueuedQuery(session_id, sql, None,
                            next(self._submit_counter), params,
                            sink=sink, batch_rows=batch_rows)
        self.admission.submit(session_id, item)

    def query(self, sql: str, *, session: Optional[str] = None,
              params: object = None) -> QueryOutcome:
        """One-shot convenience: submit on a (named) session and wait."""
        return self.session(session).query(sql, params)

    # -- workers ---------------------------------------------------------------------

    def _worker_loop(self) -> None:
        db = self.warehouse.db
        while True:
            # Block until notified (submit/close both signal the queue's
            # condition) — an idle service must not busy-poll.
            item = self.admission.next_item(timeout=None)
            if item is None:
                if self._closed and self.admission.queued() == 0:
                    return
                continue
            queued_s = time.perf_counter() - item.submitted_at
            self._queue_wait_seconds.observe(queued_s)
            if item.sink is not None:
                self._run_stream(item, queued_s)
                continue
            with self._in_flight:
                started = time.perf_counter()
                try:
                    # The journal context attributes the sys.queries
                    # entry (session, queue wait) the engine records.
                    with query_context(item.session_id, queued_s=queued_s):
                        result, report, trace = db.query_with_report(
                            item.sql, item.params)
                except BaseException as exc:
                    with self._stats_lock:
                        self._failed += 1
                    self._queries_total.inc(status="error")
                    logger.warning("query failed on %s: %s",
                                   item.session_id, exc)
                    item.future.set_exception(exc)
                    continue
                execute_s = time.perf_counter() - started
            outcome = QueryOutcome(
                session_id=item.session_id,
                sql=item.sql,
                result=result,
                report=report,
                trace=trace,
                queued_s=queued_s,
                execute_s=execute_s,
                total_s=time.perf_counter() - item.submitted_at,
            )
            with self._stats_lock:
                self._completed += 1
                self._latencies.append(outcome.total_s)
            self._queries_total.inc(status="ok")
            self._query_seconds.observe(outcome.total_s,
                                        session=item.session_id)
            if self.slow_log is not None:
                self.slow_log.observe(
                    session_id=item.session_id, sql=item.sql,
                    total_s=outcome.total_s, queued_s=queued_s,
                    execute_s=execute_s, report=report,
                )
            item.future.set_result(outcome)

    def _run_stream(self, item: _QueuedQuery, queued_s: float) -> None:
        """Drive one streaming (wire-cursor) execution on this worker.

        The worker owns the stream end-to-end: it opens the query under
        the session's :func:`query_context` (journal/slow-log
        attribution), pushes each batch into the cursor's bounded sink
        (blocking there is the backpressure — the full result is never
        materialised for a slow client) and reports completion.  A sink
        that refuses a push (client disconnected, cursor closed, stall
        timeout) stops the stream; the engine still journals the partial
        execution.
        """
        db = self.warehouse.db
        sink = item.sink
        with self._in_flight:
            started = time.perf_counter()
            run = None
            try:
                with query_context(item.session_id, queued_s=queued_s):
                    run = db.open_query(item.sql, item.params,
                                        batch_rows=item.batch_rows)
                    sink.opened(run.names, run.dtypes)
                    try:
                        for batch in run.batches():
                            if not sink.push(batch):
                                break
                    finally:
                        run.close()
            except BaseException as exc:
                with self._stats_lock:
                    self._failed += 1
                self._queries_total.inc(status="error")
                logger.warning("streamed query failed on %s: %s",
                               item.session_id, exc)
                sink.fail(exc)
                return
            execute_s = time.perf_counter() - started
        total_s = time.perf_counter() - item.submitted_at
        with self._stats_lock:
            self._completed += 1
            self._latencies.append(total_s)
        self._queries_total.inc(status="ok")
        self._query_seconds.observe(total_s, session=item.session_id)
        if self.slow_log is not None:
            self.slow_log.observe(
                session_id=item.session_id, sql=item.sql,
                total_s=total_s, queued_s=queued_s,
                execute_s=execute_s, report=run.report,
            )
        sink.finish(run.report, run.trace, queued_s=queued_s,
                    execute_s=execute_s, total_s=total_s)

    # -- introspection ----------------------------------------------------------------

    @property
    def http_port(self) -> Optional[int]:
        """The bound observability port (None when the endpoint is off)."""
        return None if self.http is None else self.http.port

    @property
    def tcp_port(self) -> Optional[int]:
        """The bound query wire-protocol port (None when TCP is off)."""
        return None if self.wire is None else self.wire.port

    def health(self) -> dict:
        """Liveness + degradation summary (the /healthz payload).

        ``status`` is ``"ok"`` or ``"degraded"``; ``degraded`` lists
        which checks tripped: a closed service, a near-full admission
        queue (>= 80% of depth), dead workers, or a metrics snapshotter
        that stopped ticking (staleness > 3 intervals).
        """
        queued = self.admission.queued()
        capacity = self.config.queue_depth
        workers_alive = sum(1 for w in self._workers if w.is_alive())
        degraded: list[str] = []
        if self._closed:
            degraded.append("closed")
        if capacity > 0 and queued >= 0.8 * capacity:
            degraded.append("queue_depth")
        if not self._closed and workers_alive < self.config.max_workers:
            degraded.append("workers")
        staleness_s: Optional[float] = None
        if self.snapshotter is not None:
            snapshots = self.snapshotter.snapshots()
            if snapshots:
                staleness_s = time.time() - snapshots[-1]["at"]
                if staleness_s > 3 * self.config.metrics_interval_s:
                    degraded.append("metrics_stale")
        checks = {
            "queue_depth": queued,
            "queue_capacity": capacity,
            "workers_alive": workers_alive,
            "workers_expected": self.config.max_workers,
            "sessions": len(self._sessions),
            "completed": self._completed,
            "failed": self._failed,
            "journal_entries": len(self.warehouse.db.journal),
        }
        if staleness_s is not None:
            checks["metrics_staleness_s"] = round(staleness_s, 3)
        return {
            "status": "degraded" if degraded else "ok",
            "degraded": degraded,
            "checks": checks,
        }

    def _collect_service_metrics(self) -> dict:
        """Scrape-time sampler over counters the service already keeps
        (registered on :meth:`start`, removed on :meth:`close`)."""
        admission = self.admission.stats
        out = {
            "repro_service_queue_depth": self.admission.queued(),
            "repro_service_sessions": len(self._sessions),
            "repro_service_submitted_total": admission.submitted,
            "repro_service_rejected_total": admission.rejected,
            "repro_service_dispatched_total": admission.dispatched,
            "repro_service_max_queued": admission.max_queued,
        }
        if self.coalescer is not None:
            for name, value in self.coalescer.stats.snapshot().items():
                out[f"repro_coalescer_{name}_total"] = value
        if self.promoter is not None:
            total = self.promoter.total
            out["repro_promoter_cycles_total"] = self.promoter.cycles
            out["repro_promoter_errors_total"] = self.promoter.errors
            out["repro_promoter_promoted_units_total"] = total.promoted_units
            out["repro_promoter_demoted_units_total"] = total.demoted_units
        if self.slow_log is not None:
            out["repro_slow_queries_total"] = len(self.slow_log)
        if self.wire is not None:
            for name, value in self.wire.stats().items():
                out[f"repro_wire_{name}"] = value
        return out

    def stats(self) -> ServiceStats:
        with self._stats_lock:
            return ServiceStats(
                completed=self._completed,
                failed=self._failed,
                admission=self.admission.stats,
                coalescer=self.coalescer.stats if self.coalescer else None,
                latencies_s=list(self._latencies),
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"WarehouseService(workers={self.config.max_workers}, "
                f"queued={self.admission.queued()}, "
                f"completed={self._completed})")
