"""Concurrent query serving for the lazy warehouse.

The paper's promise — ETL work happens at query time, only for data a
query touches — must survive *concurrent* query time.  This package adds
the serving layer: admission control, per-session fairness, single-flight
extraction coalescing and parallel per-file extraction, on top of the
thread-safe cache/storage layers underneath.
"""

from repro.service.admission import AdmissionController, AdmissionStats
from repro.service.coalescer import (
    ClaimOutcome,
    CoalescerStats,
    ExtractionCoalescer,
    ExtractionFlight,
)
from repro.service.parallel import ExtractorStats, ParallelExtractor
from repro.service.promoter import (
    BackgroundPromoter,
    Promoter,
    PromoterConfig,
    PromotionReport,
)
from repro.service.service import (
    ClientSession,
    QueryOutcome,
    ServiceConfig,
    ServiceStats,
    WarehouseService,
)

__all__ = [
    "AdmissionController",
    "AdmissionStats",
    "ClaimOutcome",
    "ClientSession",
    "CoalescerStats",
    "ExtractionCoalescer",
    "ExtractionFlight",
    "ExtractorStats",
    "ParallelExtractor",
    "BackgroundPromoter",
    "Promoter",
    "PromoterConfig",
    "PromotionReport",
    "QueryOutcome",
    "ServiceConfig",
    "ServiceStats",
    "WarehouseService",
]
