"""Admission control for the concurrent query service.

A bounded queue protects the warehouse from unbounded fan-in ("heavy
traffic from millions of users" cannot mean unbounded memory): when the
queue is full, new queries are rejected immediately with
:class:`~repro.errors.AdmissionError` so clients can back off, rather
than queueing into timeout purgatory.

Dispatch is **per-session fair**: each session has its own FIFO and the
dispatcher serves sessions round-robin, so one chatty session streaming
thousands of queries cannot starve an interactive one.  (``fair=False``
degrades to a single global FIFO for the ablation in bench E12.)

A separate ``max_in_flight`` semaphore caps queries *executing*
concurrently, independently of the worker count — admission and
execution pressure are controlled by different knobs.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Generic, Optional, TypeVar

from repro.errors import AdmissionError, ServiceClosedError

T = TypeVar("T")


@dataclass
class AdmissionStats:
    submitted: int = 0
    rejected: int = 0
    dispatched: int = 0
    max_queued: int = 0


class AdmissionController(Generic[T]):
    """Bounded, per-session-fair queue feeding the service workers."""

    def __init__(self, *, queue_depth: int = 128, fair: bool = True) -> None:
        if queue_depth <= 0:
            raise ValueError("queue_depth must be positive")
        self.queue_depth = queue_depth
        self.fair = fair
        # session id -> FIFO of queued items; OrderedDict gives us a
        # stable round-robin ring (rotation via move_to_end).
        self._queues: "OrderedDict[str, deque[T]]" = OrderedDict()
        self._queued = 0
        self._closed = False
        self._cond = threading.Condition()
        self.stats = AdmissionStats()

    # -- producer side -----------------------------------------------------------

    def submit(self, session_id: str, item: T) -> int:
        """Enqueue one query; returns the queue depth after admission.

        Raises :class:`AdmissionError` when the bounded queue is full and
        :class:`ServiceClosedError` after :meth:`close`.
        """
        with self._cond:
            if self._closed:
                raise ServiceClosedError("service is shut down")
            if self._queued >= self.queue_depth:
                self.stats.rejected += 1
                raise AdmissionError(
                    f"admission queue full ({self._queued}/{self.queue_depth})"
                )
            self._queues.setdefault(session_id, deque()).append(item)
            self._queued += 1
            self.stats.submitted += 1
            self.stats.max_queued = max(self.stats.max_queued, self._queued)
            self._cond.notify()
            return self._queued

    # -- consumer side -----------------------------------------------------------

    def next_item(self, timeout: Optional[float] = None) -> Optional[T]:
        """Dequeue the next query, round-robin across sessions.

        Blocks up to ``timeout`` seconds; returns ``None`` on timeout or
        when the controller is closed and drained.
        """
        with self._cond:
            while self._queued == 0:
                if self._closed:
                    return None
                if not self._cond.wait(timeout):
                    return None
            if self.fair:
                # Serve the least-recently-served session with work.
                for session_id in list(self._queues):
                    queue = self._queues[session_id]
                    if queue:
                        item = queue.popleft()
                        if queue:
                            self._queues.move_to_end(session_id)
                        else:
                            # Reap drained sessions: a long-lived service
                            # sees unboundedly many session ids.
                            del self._queues[session_id]
                        break
                    del self._queues[session_id]
                else:  # pragma: no cover - _queued > 0 guarantees a hit
                    return None
            else:
                # Global FIFO: oldest item across all sessions.
                item = None
                best_session = None
                for session_id in list(self._queues):
                    queue = self._queues[session_id]
                    if not queue:
                        del self._queues[session_id]
                        continue
                    candidate = queue[0]
                    order = getattr(candidate, "submit_seq", 0)
                    if item is None or order < getattr(item, "submit_seq", 0):
                        item = candidate
                        best_session = session_id
                assert best_session is not None
                self._queues[best_session].popleft()
                if not self._queues[best_session]:
                    del self._queues[best_session]
            self._queued -= 1
            self.stats.dispatched += 1
            return item

    def queued(self) -> int:
        with self._cond:
            return self._queued

    def close(self) -> None:
        """Refuse new work and wake every blocked consumer."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def drain(self) -> list[T]:
        """Remove and return everything still queued (post-close cleanup)."""
        with self._cond:
            leftovers: list[T] = []
            for queue in self._queues.values():
                leftovers.extend(queue)
                queue.clear()
            self._queued = 0
            return leftovers
