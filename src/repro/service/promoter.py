"""Adaptive lazy→eager promotion: materialize what the workload proves hot.

The paper's crossover (E7) is a fork the operator had to take up front:
lazy wins the first query, eager wins repeated scans.  The promoter
removes the fork.  The :class:`~repro.etl.heat.AccessHeatTracker` watches
which extraction units queries actually touch; this module's
:class:`Promoter` periodically materializes the hottest units into
immutable :class:`~repro.storage.promoted.PromotedStore` segments — so
subsequent queries read transformed columns straight off disk pages
(buffer-pool cached, like a :class:`~repro.db.plan.physical.PDiskScan`)
instead of re-running extraction — and demotes the coldest segments when
the disk budget is exceeded.  Cold-start behaviour is untouched: nothing
is promoted until the workload demonstrates heat.

Two drivers share the same cycle:

* :class:`BackgroundPromoter` — a daemon thread owned by
  :class:`~repro.service.service.WarehouseService` (``promote=True``),
  promoting continuously under live traffic;
* :meth:`SeismicWarehouse.promote() <repro.seismology.warehouse.
  SeismicWarehouse.promote>` — one synchronous cycle, for single-process
  and bench use.

Promotion data comes from the extraction cache when the unit is still
resident, otherwise the promoter *extracts in the background* — paying
the extraction once, off the query path, which is the whole point.
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.errors import ETLError, ExtractionError, MSeedError, StorageError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.etl.heat import AccessHeatTracker
    from repro.etl.lazy import LazyDataBinding
    from repro.storage.promoted import PromotedStore

logger = logging.getLogger("repro.service.promoter")


@dataclass
class PromoterConfig:
    """Knobs for one promoter (service config mirrors these)."""

    budget_bytes: int = 256 * 1024 * 1024  # promoted segments on disk
    min_score: float = 2.0    # decayed heat a unit needs to qualify
    max_units_per_cycle: int = 512
    interval_s: float = 1.0   # background cycle period

    def __post_init__(self) -> None:
        if self.budget_bytes <= 0:
            raise ETLError("promotion budget_bytes must be positive")
        if self.max_units_per_cycle <= 0:
            raise ETLError("max_units_per_cycle must be positive")
        if self.interval_s <= 0:
            raise ETLError("promotion interval_s must be positive")


@dataclass
class PromotionReport:
    """What one promotion cycle did."""

    candidates: int = 0        # hot units considered this cycle
    promoted_units: int = 0
    promoted_bytes: int = 0    # raw payload bytes written
    from_cache_units: int = 0  # promoted straight from the extraction cache
    extracted_units: int = 0   # promoted via a background extraction
    demoted_units: int = 0
    demoted_segments: int = 0
    skipped_files: int = 0     # stale/vanished files left to the query path
    seconds: float = 0.0
    live_units: int = 0        # promoted-store size after the cycle
    disk_bytes: int = 0        # promoted-store footprint after the cycle

    def merge(self, other: "PromotionReport") -> None:
        self.candidates += other.candidates
        self.promoted_units += other.promoted_units
        self.promoted_bytes += other.promoted_bytes
        self.from_cache_units += other.from_cache_units
        self.extracted_units += other.extracted_units
        self.demoted_units += other.demoted_units
        self.demoted_segments += other.demoted_segments
        self.skipped_files += other.skipped_files
        self.seconds += other.seconds
        self.live_units = other.live_units
        self.disk_bytes = other.disk_bytes


class Promoter:
    """One promotion engine over a lazy binding + promoted store."""

    def __init__(self, binding: "LazyDataBinding",
                 heat: "AccessHeatTracker",
                 promoted: "PromotedStore",
                 config: Optional[PromoterConfig] = None) -> None:
        if promoted is None:
            raise ETLError("promotion requires attached storage "
                           "(SeismicWarehouse(storage_path=...))")
        self.binding = binding
        self.heat = heat
        self.promoted = promoted
        self.config = config or PromoterConfig()
        self.total = PromotionReport()

    # -- one cycle ---------------------------------------------------------------

    def run_cycle(self, *, budget_bytes: Optional[int] = None
                  ) -> PromotionReport:
        """Promote the hottest unpromoted units, then demote to budget."""
        started = time.perf_counter()
        budget = self.config.budget_bytes if budget_bytes is None \
            else budget_bytes
        report = PromotionReport()
        with self.promoted.mutate_lock:
            self._gc_empty_segments(report)
            fresh_segment = self._promote_hot(report, budget)
            self._demote_to_budget(budget, fresh_segment, report)
            report.live_units = len(self.promoted)
            report.disk_bytes = self.promoted.disk_bytes()
        report.seconds = time.perf_counter() - started
        if report.promoted_units or report.demoted_units:
            self.binding.oplog.record(
                "promote",
                f"promotion cycle: +{report.promoted_units} units "
                f"(-{report.demoted_units} demoted)",
                from_cache=report.from_cache_units,
                extracted=report.extracted_units,
                disk_bytes=report.disk_bytes,
                seconds=round(report.seconds, 4),
            )
        self.total.merge(report)
        return report

    # -- internals ----------------------------------------------------------------

    def _promote_hot(self, report: PromotionReport,
                     budget: int) -> Optional[str]:
        # One decayed snapshot (hottest-first) drives both the selection
        # and the already-covered exclusion.  A unit whose promoted copy
        # covers every column the workload touches is skipped; one whose
        # demand *widened* (new columns in its heat entry) is re-promoted
        # with the union set, otherwise it would miss the promoted path
        # forever.  Selection is budget-aware via the tracker's payload
        # estimates: picking more than the budget could retain would
        # write a segment only for demotion to delete it — an endless
        # write/delete thrash when the hot set outgrows the budget.
        key_columns = set(self.binding.key_columns)
        per_file: dict[str, dict[int, set]] = {}
        picked = 0
        estimated_bytes = 0
        for uri, seq_no, score, unit in self.heat.snapshot():
            if score < self.config.min_score:
                break  # snapshot is sorted: everything after is colder
            wanted = set(unit.columns) - key_columns
            if not wanted:
                continue
            existing = self.promoted.unit(uri, seq_no)
            if existing is not None and wanted <= set(existing.columns):
                continue
            if unit.nbytes > budget:
                continue  # could never be retained under this budget
            if picked and estimated_bytes + unit.nbytes > budget:
                break  # budget's worth of hot units this cycle
            estimated_bytes += unit.nbytes
            per_file.setdefault(uri, {})[seq_no] = wanted
            picked += 1
            if picked >= self.config.max_units_per_cycle:
                break
        report.candidates = picked
        if not picked:
            return None

        entries: list = []
        for uri in sorted(per_file):
            entries.extend(self._gather_file(uri, per_file[uri], report))
        if not entries:
            return None
        segment = self.promoted.promote_batch(entries)
        report.promoted_units += len(entries)
        report.promoted_bytes += sum(
            arr.nbytes for _u, _s, _m, columns in entries
            for arr in columns.values()
        )
        return segment

    def _gather_file(self, uri: str, wanted: dict[int, set],
                     report: PromotionReport) -> list:
        """Collect ``(uri, seq, mtime_ns, columns)`` for one file's units.

        The cache stripe lock covers only the validate + cache-read
        steps, mirroring the query path — holding it across a background
        extraction would stall concurrent queries on the very component
        meant to take work *off* the query path.  Extraction runs outside
        the lock (coalesced with any concurrent query needing the same
        records), and the file's generation is re-checked afterwards: if
        the mtime moved mid-gather the whole file is skipped, so a
        promoted unit can never pair new content with an old mtime or
        vice versa.  A stale or vanished file is always *skipped* — the
        query path owns metadata refresh, promotion waits for the next
        cycle.
        """
        binding = self.binding
        union_cols = sorted(set().union(*wanted.values()))
        entries: list = []
        missing: list[int] = []
        from_cache = extracted = 0  # folded in only when the file succeeds
        try:
            with binding.cache.file_lock(uri):
                info = binding.repo.stat(uri)
                stale = not binding.cache.validate_file(uri, info.mtime_ns)
                if not stale and binding.promoted is not None:
                    stale = binding.promoted.file_is_stale(uri,
                                                          info.mtime_ns)
                if stale:
                    # validate_file is a consuming check: having observed
                    # the rewrite, we must run the full stale reaction
                    # (metadata refresh, promoted/heat invalidation) or
                    # the next query would never learn the file changed.
                    binding.handle_stale_file(uri)
                    report.skipped_files += 1
                    return []
                live = {span.seq_no for span in binding.index.spans(uri)}
                for seq in sorted(wanted):
                    if seq not in live:
                        continue
                    cached = binding.cache.get(uri, seq, union_cols)
                    if cached is None:
                        missing.append(seq)
                    else:
                        entries.append((uri, seq, info.mtime_ns, cached))
                        from_cache += 1
            if missing:
                pieces = binding._extract_missing(
                    uri, missing, union_cols, info.mtime_ns, trace=[])
                if binding.repo.stat(uri).mtime_ns != info.mtime_ns:
                    # The file was rewritten while we extracted: nothing
                    # gathered for it is trustworthy this cycle.
                    report.skipped_files += 1
                    return []
                for _uri, seq, columns, _rows in pieces:
                    entries.append((uri, seq, info.mtime_ns, columns))
                    extracted += 1
        except (OSError, ExtractionError, MSeedError, StorageError):
            # Vanished / concurrently rewritten file: the query path's
            # staleness handling is the authority; drop our stale heat.
            self.heat.forget_file(uri)
            report.skipped_files += 1
            return []
        report.from_cache_units += from_cache
        report.extracted_units += extracted
        return entries

    def _gc_empty_segments(self, report: PromotionReport) -> None:
        empties = self.promoted.empty_segments()
        for segment in empties:
            self.promoted.drop_segment(segment, commit=False)
            report.demoted_segments += 1
        if empties:
            self.promoted.store.commit()

    def _demote_to_budget(self, budget: int, fresh_segment: Optional[str],
                          report: PromotionReport) -> None:
        """Drop the coldest segments until the footprint fits the budget.

        The segment just written this cycle is demoted last — demoting
        what we just promoted would thrash.  Victims are dropped in one
        batch with a single manifest commit (and one orphan sweep), not
        one commit per segment.
        """
        sizes = self.promoted.segment_sizes()
        total = sum(sizes.values())
        if total <= budget:
            return
        segments = self.promoted.segments()
        now = self.heat.clock()

        def segment_heat(segment: str) -> float:
            keys = segments.get(segment, [])
            if not keys:
                return -1.0
            return max(self.heat.score_of(uri, seq, now)
                       for uri, seq in keys)

        # Coldest first; the fresh segment sorts after everything else.
        victims = sorted(sizes, key=lambda seg: (seg == fresh_segment,
                                                 segment_heat(seg)))
        dropped = False
        for segment in victims:
            if total <= budget:
                break
            total -= sizes[segment]
            report.demoted_units += self.promoted.drop_segment(
                segment, commit=False)
            report.demoted_segments += 1
            dropped = True
        if dropped:
            self.promoted.store.commit()


class BackgroundPromoter:
    """Daemon thread running promotion cycles at a fixed interval.

    Owned by :class:`~repro.service.service.WarehouseService`; failures
    in one cycle are logged and do not kill the thread (promotion is an
    optimisation — the lazy path stays correct without it).
    """

    def __init__(self, promoter: Promoter) -> None:
        self.promoter = promoter
        self._stop = threading.Event()
        self._wake = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, name="repro-promoter", daemon=True)
        self.cycles = 0
        self.errors = 0
        self.last_error: Optional[BaseException] = None
        self._lock = threading.Lock()

    def start(self) -> None:
        self._thread.start()

    def kick(self) -> None:
        """Request an immediate cycle (tests; load spikes)."""
        self._wake.set()

    def stop(self) -> None:
        """Stop the thread after at most one more cycle."""
        self._stop.set()
        self._wake.set()
        if self._thread.is_alive():
            self._thread.join()

    @property
    def total(self) -> PromotionReport:
        return self.promoter.total

    def _loop(self) -> None:
        interval = self.promoter.config.interval_s
        while not self._stop.is_set():
            self._wake.wait(timeout=interval)
            self._wake.clear()
            if self._stop.is_set():
                return
            try:
                self.promoter.run_cycle()
                with self._lock:
                    self.cycles += 1
            except Exception as exc:
                with self._lock:
                    self.errors += 1
                    self.last_error = exc
                logger.exception("promotion cycle failed (continuing)")
                self.promoter.binding.oplog.record(
                    "promote", "promotion cycle failed (continuing)",
                    error=repr(exc)[:200])
