"""Wire server: auth, validation, ugly corners, drain, attribution."""

import socket
import struct
import threading
import time

import pytest

from repro.errors import (
    ServiceError,
    WireAuthError,
    WireShutdownError,
)
from repro.net import connect_tcp, frames
from repro.seismology.warehouse import SeismicWarehouse
from repro.service.service import ServiceConfig

TOKENS = ["alice=wire-secret", "spare-secret"]
TOKEN = "wire-secret"


@pytest.fixture(scope="module")
def wired(tiny_repo):
    """One served warehouse shared by the read-only tests."""
    wh = SeismicWarehouse(tiny_repo.root, mode="lazy")
    svc = wh.serve(max_workers=2, tcp_port=0, auth_tokens=TOKENS,
                   cursor_window_batches=2)
    yield wh, svc
    svc.close()
    wh.close()


def _connect(svc, **kwargs):
    kwargs.setdefault("token", TOKEN)
    return connect_tcp("127.0.0.1", svc.tcp_port, **kwargs)


def _raw_authed_socket(svc) -> socket.socket:
    sock = socket.create_connection(("127.0.0.1", svc.tcp_port), timeout=10)
    sock.sendall(frames.pack_json_frame(frames.MSG_HELLO, {"token": TOKEN}))
    msg_type, _ = frames.recv_frame_sock(sock)
    assert msg_type == frames.MSG_WELCOME
    return sock


def _wait_until(predicate, timeout_s=10.0, message="condition"):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError(f"timed out waiting for {message}")


# -- ServiceConfig validation ------------------------------------------------


def test_config_rejects_out_of_range_tcp_port():
    with pytest.raises(ServiceError, match=r"tcp_port"):
        ServiceConfig(tcp_port=65536, auth_tokens=["x"])
    with pytest.raises(ServiceError, match=r"tcp_port"):
        ServiceConfig(tcp_port=-1, auth_tokens=["x"])


def test_config_requires_auth_token_for_tcp():
    with pytest.raises(ServiceError, match="auth token"):
        ServiceConfig(tcp_port=0)
    with pytest.raises(ServiceError, match="auth token"):
        ServiceConfig(tcp_port=0, auth_tokens=[""])


def test_config_rejects_degenerate_wire_tunables():
    with pytest.raises(ServiceError, match="cursor_window_batches"):
        ServiceConfig(tcp_port=0, auth_tokens=["x"],
                      cursor_window_batches=0)
    with pytest.raises(ServiceError, match="cursor_stall_timeout_s"):
        ServiceConfig(tcp_port=0, auth_tokens=["x"],
                      cursor_stall_timeout_s=0)
    with pytest.raises(ServiceError, match="tcp_max_frame_bytes"):
        ServiceConfig(tcp_port=0, auth_tokens=["x"], tcp_max_frame_bytes=0)
    with pytest.raises(ServiceError, match="tcp_drain_s"):
        ServiceConfig(tcp_port=0, auth_tokens=["x"], tcp_drain_s=-1)


def test_double_close_is_noop(tiny_repo):
    wh = SeismicWarehouse(tiny_repo.root, mode="lazy")
    svc = wh.serve(max_workers=2, tcp_port=0, auth_tokens=[TOKEN])
    svc.close()
    started = time.monotonic()
    svc.close()  # regression: second close must return, not hang/raise
    assert time.monotonic() - started < 5.0
    wh.close()


# -- auth --------------------------------------------------------------------


def test_auth_failure_before_any_query(wired):
    _wh, svc = wired
    before = svc.wire.stats()["auth_failures_total"]
    with pytest.raises(WireAuthError, match="authentication failed"):
        _connect(svc, token="wrong-secret")
    assert svc.wire.stats()["auth_failures_total"] == before + 1
    # The listener survives and still serves good credentials.
    with _connect(svc) as conn:
        assert conn.execute(
            "SELECT COUNT(*) FROM mseed.records").scalar() > 0


def test_principal_and_plain_tokens(wired):
    _wh, svc = wired
    with _connect(svc, token="wire-secret") as conn:
        assert conn.principal == "alice"
    with _connect(svc, token="spare-secret") as conn:
        assert conn.principal == "token-1"


def test_open_before_hello_is_auth_error(wired):
    _wh, svc = wired
    sock = socket.create_connection(("127.0.0.1", svc.tcp_port), timeout=10)
    try:
        sock.sendall(frames.pack_json_frame(frames.MSG_OPEN,
                                            {"sql": "SELECT 1"}))
        msg_type, payload = frames.recv_frame_sock(sock)
        assert msg_type == frames.MSG_ERROR
        assert frames.decode_json_payload(payload)["code"] == frames.ERR_AUTH
    finally:
        sock.close()


# -- statement policy --------------------------------------------------------


def test_non_select_is_rejected(wired):
    _wh, svc = wired
    with _connect(svc) as conn:
        with pytest.raises(ServiceError, match="SELECT"):
            conn.execute("CREATE TABLE t (x BIGINT)")
        # the connection itself is still usable afterwards
        assert conn.execute(
            "SELECT COUNT(*) FROM mseed.records").scalar() > 0


# -- hostile frames ----------------------------------------------------------


def test_oversized_frame_gets_typed_error_and_close(wired):
    _wh, svc = wired
    sock = _raw_authed_socket(svc)
    try:
        limit = svc.config.tcp_max_frame_bytes
        sock.sendall(struct.pack("<IB", limit + 2, frames.MSG_OPEN))
        msg_type, payload = frames.recv_frame_sock(sock)
        assert msg_type == frames.MSG_ERROR
        obj = frames.decode_json_payload(payload)
        assert obj["code"] == frames.ERR_PROTOCOL
        assert "exceeds" in obj["error"]
        with pytest.raises(ConnectionError):
            frames.recv_frame_sock(sock)  # server closed the connection
    finally:
        sock.close()


def test_garbage_frame_type_gets_typed_error_and_close(wired):
    _wh, svc = wired
    sock = _raw_authed_socket(svc)
    try:
        sock.sendall(struct.pack("<IB", 1, 0x7E))
        msg_type, payload = frames.recv_frame_sock(sock)
        assert msg_type == frames.MSG_ERROR
        assert frames.decode_json_payload(payload)["code"] == \
            frames.ERR_PROTOCOL
    finally:
        sock.close()


def test_torn_frame_does_not_crash_server(wired):
    _wh, svc = wired
    sock = _raw_authed_socket(svc)
    # A header promising 100 bytes, then hang up mid-payload.
    sock.sendall(struct.pack("<IB", 101, frames.MSG_OPEN) + b"partial")
    sock.close()
    _wait_until(lambda: svc.wire.stats()["connections"] == 0,
                message="torn session teardown")
    with _connect(svc) as conn:  # the server is alive and well
        assert conn.execute(
            "SELECT COUNT(*) FROM mseed.files").scalar() > 0


def test_unexpected_server_frame_type_closes_session(wired):
    _wh, svc = wired
    sock = _raw_authed_socket(svc)
    try:
        # WELCOME is a server->client frame; a client sending it is
        # speaking the wrong half of the protocol.
        sock.sendall(frames.pack_json_frame(frames.MSG_WELCOME, {}))
        msg_type, payload = frames.recv_frame_sock(sock)
        assert msg_type == frames.MSG_ERROR
        assert frames.decode_json_payload(payload)["code"] == \
            frames.ERR_PROTOCOL
    finally:
        sock.close()


# -- cursor lifecycle under client failure -----------------------------------


def test_disconnect_mid_fetch_frees_cursor_and_slot(wired):
    _wh, svc = wired
    conn = _connect(svc)
    run = conn._run(
        "SELECT sample_time, sample_value FROM mseed.dataview", None, 32)
    batches = run.batches()
    next(batches)  # stream is live; the producer holds a worker
    assert svc.wire.stats()["cursors_open"] == 1
    conn._sock.close()  # vanish without CLOSE/GOODBYE
    _wait_until(lambda: svc.wire.stats()["cursors_open"] == 0,
                message="cursor cleanup after disconnect")
    _wait_until(lambda: svc.wire.stats()["connections"] == 0,
                message="session cleanup after disconnect")
    # The admission slot and worker are free again: new queries run.
    with _connect(svc) as probe:
        assert probe.execute(
            "SELECT COUNT(*) FROM mseed.records").scalar() > 0


def test_close_cursor_frees_server_state(wired):
    _wh, svc = wired
    with _connect(svc) as conn:
        cur = conn.cursor(batch_rows=16)
        cur.execute("SELECT sample_time FROM mseed.dataview")
        assert cur.fetchone() is not None
        cur.close()  # sends CLOSE_CURSOR
        _wait_until(lambda: svc.wire.stats()["cursors_open"] == 0,
                    message="explicit cursor close")


# -- observability attribution -----------------------------------------------


def test_wire_sessions_attributed_in_journal_and_systables(wired):
    wh, svc = wired
    with _connect(svc) as conn:
        assert conn.execute(
            "SELECT COUNT(*) FROM mseed.records").scalar() > 0
        session_id = conn.session

        # sys.connections: live session with peer + principal + counters
        rows = conn.execute(
            "SELECT session, peer, principal, bytes_in, bytes_out "
            "FROM sys.connections").fetchall()
        mine = [r for r in rows if r[0] == session_id]
        assert mine, f"no sys.connections row for {session_id}: {rows}"
        assert mine[0][1].startswith("127.0.0.1:")
        assert mine[0][2] == "alice"
        assert mine[0][3] > 0 and mine[0][4] > 0

    # sys.queries: the journal entry carries session id + peer address
    local = wh.connect()
    entries = local.execute(
        "SELECT session FROM sys.queries WHERE status = 'ok'").fetchall()
    wire_sessions = [s for (s,) in entries if s.startswith("wire-")]
    assert wire_sessions, f"no wire-attributed journal entries: {entries}"
    assert any("@127.0.0.1:" in s for s in wire_sessions)


def test_wire_metrics_exported(wired):
    wh, svc = wired
    with _connect(svc) as conn:
        conn.ping()
        snapshot = wh.metrics_registry.snapshot()
    assert "repro_wire_connections_total" in snapshot
    assert "repro_wire_cursors_open" in snapshot
    stats = svc.wire.stats()
    assert stats["connections_total"] >= 1
    assert stats["session_bytes_out"] >= 0


# -- shutdown: graceful drain vs deadline abort ------------------------------


def test_graceful_drain_lets_cursor_finish(tiny_repo):
    wh = SeismicWarehouse(tiny_repo.root, mode="lazy")
    svc = wh.serve(max_workers=2, tcp_port=0, auth_tokens=[TOKEN],
                   cursor_window_batches=2, tcp_drain_s=30.0)
    conn = _connect(svc)
    cur = conn.cursor(batch_rows=64)
    cur.execute("SELECT sample_time, sample_value FROM mseed.dataview")
    first = cur.fetchmany(64)
    assert len(first) == 64

    closer = threading.Thread(target=svc.close)
    closer.start()
    try:
        # The service is draining, but this in-flight cursor may run to
        # completion — every remaining row arrives.
        rest = cur.fetchall()
        assert len(rest) > 0
        assert cur.report is not None
        assert cur.report.rows_out == len(first) + len(rest)
    finally:
        closer.join(timeout=60)
        assert not closer.is_alive()
        conn.close()
        wh.close()


def test_drain_deadline_aborts_stalled_cursor(tiny_repo):
    wh = SeismicWarehouse(tiny_repo.root, mode="lazy")
    svc = wh.serve(max_workers=2, tcp_port=0, auth_tokens=[TOKEN],
                   cursor_window_batches=1, tcp_drain_s=0.3)
    conn = _connect(svc)
    run = conn._run(
        "SELECT sample_time, sample_value FROM mseed.dataview", None, 16)
    batches = run.batches()
    next(batches)  # open the stream, then stop fetching: the cursor stalls

    closer = threading.Thread(target=svc.close)
    closer.start()
    closer.join(timeout=60)
    assert not closer.is_alive(), "close() hung past the drain deadline"
    # The abort is observable from the client as a typed shutdown error
    # (or, if the transport died first, a connection error).
    with pytest.raises((WireShutdownError, ConnectionError)):
        for _ in batches:
            pass
    conn.close()
    wh.close()


def test_connections_refused_after_close(tiny_repo):
    wh = SeismicWarehouse(tiny_repo.root, mode="lazy")
    svc = wh.serve(max_workers=2, tcp_port=0, auth_tokens=[TOKEN])
    port = svc.tcp_port
    svc.close()
    with pytest.raises((WireShutdownError, ConnectionError, OSError)):
        connect_tcp("127.0.0.1", port, token=TOKEN, timeout=5)
    wh.close()
