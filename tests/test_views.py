"""View expansion and the paper's inner-alias addressing."""

import pytest

from repro.db import Database
from repro.errors import BindError, CatalogError


@pytest.fixture()
def db():
    database = Database()
    database.execute("CREATE SCHEMA app")
    database.execute(
        "CREATE TABLE app.files (loc VARCHAR PRIMARY KEY, station VARCHAR)")
    database.execute(
        "CREATE TABLE app.points (loc VARCHAR, v BIGINT)")
    database.execute("INSERT INTO app.files VALUES ('f1', 'HGN'), ('f2', 'ISK')")
    database.execute(
        "INSERT INTO app.points VALUES ('f1', 1), ('f1', 2), ('f2', 30)")
    database.execute("""CREATE VIEW app.joined AS
        SELECT F.loc AS loc, F.station, P.v
        FROM app.files AS F, app.points AS P
        WHERE F.loc = P.loc""")
    return database


def test_view_is_not_materialised(db):
    # Rows inserted after view creation are visible: the view expands at
    # query time (the paper's lazy transformation).
    db.execute("INSERT INTO app.points VALUES ('f2', 40)")
    total = db.query("SELECT COUNT(*) FROM app.joined").scalar()
    assert total == 4


def test_view_inner_alias_addressing(db):
    # The paper's F.station form against the view.
    rows = db.query(
        "SELECT F.station, SUM(P.v) FROM app.joined "
        "GROUP BY F.station ORDER BY F.station").rows()
    assert rows == [("HGN", 3), ("ISK", 30)]


def test_view_output_names_work_too(db):
    rows = db.query(
        "SELECT station, v FROM app.joined ORDER BY v DESC").rows()
    assert rows[0] == ("ISK", 30)


def test_view_alias_in_from(db):
    rows = db.query(
        "SELECT j.station FROM app.joined AS j WHERE j.v = 30").rows()
    assert rows == [("ISK",)]


def test_unknown_inner_alias_fails(db):
    with pytest.raises(BindError):
        db.query("SELECT X.station FROM app.joined")


def test_view_over_view(db):
    db.execute(
        "CREATE VIEW app.big AS SELECT station, v FROM app.joined WHERE v > 1")
    rows = db.query("SELECT station FROM app.big ORDER BY v").rows()
    assert rows == [("HGN",), ("ISK",)]


def test_duplicate_view_rejected(db):
    with pytest.raises(CatalogError):
        db.execute("CREATE VIEW app.joined AS SELECT loc FROM app.files")


def test_drop_view(db):
    db.execute("DROP VIEW app.joined")
    with pytest.raises(BindError):
        db.query("SELECT * FROM app.joined")


def test_view_validated_at_creation(db):
    with pytest.raises(BindError):
        db.execute("CREATE VIEW app.bad AS SELECT ghost FROM app.files")


def test_star_through_view(db):
    rows = db.query("SELECT * FROM app.joined ORDER BY v").rows()
    assert rows[0] == ("f1", "HGN", 1)
    assert len(rows[0]) == 3
