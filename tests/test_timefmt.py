"""Unit and property tests for the time utilities."""

import datetime as dt

import pytest
from hypothesis import given, strategies as st

from repro.util import timefmt


def test_from_ymd_epoch():
    assert timefmt.from_ymd(1970, 1, 1) == 0
    assert timefmt.from_ymd(1970, 1, 2) == timefmt.MICROS_PER_DAY


def test_parse_iso8601_paper_literals():
    # The exact literal forms from the paper's Figure-1 queries.
    t0 = timefmt.parse_iso8601("2010-01-12T00:00:00.000")
    t1 = timefmt.parse_iso8601("2010-01-12T23:59:59.999")
    assert t1 - t0 == 86_400_000_000 - 1000
    assert timefmt.parse_iso8601("2010-01-12T22:15:00.000") == \
        timefmt.from_ymd(2010, 1, 12, 22, 15)


def test_parse_iso8601_variants():
    base = timefmt.from_ymd(2010, 1, 12, 22, 15)
    assert timefmt.parse_iso8601("2010-01-12 22:15:00") == base
    assert timefmt.parse_iso8601("2010-01-12T22:15:00Z") == base
    assert timefmt.parse_iso8601("2010-01-12T22:15:00+00:00") == base
    assert timefmt.parse_iso8601("2010-01-12") == \
        timefmt.from_ymd(2010, 1, 12)


def test_parse_iso8601_rejects_garbage():
    with pytest.raises(ValueError):
        timefmt.parse_iso8601("")
    with pytest.raises(ValueError):
        timefmt.parse_iso8601("not-a-date")


def test_format_iso8601_millis_and_micros():
    stamp = timefmt.from_ymd(2010, 1, 12, 22, 15, 0, 123456)
    assert timefmt.format_iso8601(stamp) == "2010-01-12T22:15:00.123"
    assert timefmt.format_iso8601(stamp, millis=False) == \
        "2010-01-12T22:15:00.123456"


def test_day_of_year():
    assert timefmt.day_of_year(timefmt.from_ymd(2010, 1, 12)) == (2010, 12)
    assert timefmt.day_of_year(timefmt.from_ymd(2012, 12, 31)) == (2012, 366)


def test_from_yday_inverse_of_day_of_year():
    stamp = timefmt.from_ymd(2011, 6, 5, 3, 4, 5)
    year, yday = timefmt.day_of_year(stamp)
    rebuilt = timefmt.from_yday(year, yday, 3, 4, 5)
    assert rebuilt == stamp


def test_sample_interval():
    assert timefmt.sample_interval_us(40.0) == 25_000
    with pytest.raises(ValueError):
        timefmt.sample_interval_us(0)


@given(
    st.datetimes(
        min_value=dt.datetime(1975, 1, 1),
        max_value=dt.datetime(2100, 1, 1),
    )
)
def test_format_parse_roundtrip(moment):
    micros = timefmt.from_ymd(
        moment.year, moment.month, moment.day, moment.hour,
        moment.minute, moment.second, moment.microsecond,
    )
    text = timefmt.format_iso8601(micros, millis=False)
    assert timefmt.parse_iso8601(text) == micros


@given(st.integers(min_value=0, max_value=4_000_000_000_000_000))
def test_day_of_year_matches_datetime(micros):
    year, yday = timefmt.day_of_year(micros)
    moment = timefmt.to_datetime(micros)
    assert year == moment.year
    assert yday == moment.timetuple().tm_yday
