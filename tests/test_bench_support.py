"""Tests for the benchmark support package (workloads + reporting)."""

from repro.bench.reporting import ExperimentTable
from repro.bench.workload import (
    SCALES,
    build_scaled_repo,
    full_stream_query,
    shared_demo_repo,
    stream_window_queries,
)


def test_scales_are_ordered():
    assert SCALES["S"].n_files < SCALES["M"].n_files < SCALES["L"].n_files


def test_build_scaled_repo_is_memoised():
    root_a, manifest_a = build_scaled_repo(SCALES["S"])
    root_b, manifest_b = build_scaled_repo(SCALES["S"])
    assert root_a == root_b
    assert manifest_a is manifest_b
    assert len(manifest_a.entries) == SCALES["S"].n_files


def test_shared_demo_repo_shape():
    _root, manifest = shared_demo_repo()
    assert len(manifest.entries) == 54  # 9 stations x 3 channels x 2 files


def test_stream_window_queries_deterministic():
    _root, manifest = shared_demo_repo()
    first = stream_window_queries(manifest, 5, seed=3)
    second = stream_window_queries(manifest, 5, seed=3)
    assert first == second
    assert len(first) == 5
    assert all("sample_time" in q for q in first)


def test_stream_window_queries_run(lazy_wh, demo_repo):
    for sql in stream_window_queries(demo_repo, 3, seed=1):
        result = lazy_wh.query(sql)
        assert result.row_count == 1


def test_full_stream_query_runs(lazy_wh):
    result = lazy_wh.query(full_stream_query("HGN", "BHZ"))
    low, high, count = result.first()
    assert count > 0 and low <= high


def test_experiment_table_render_and_markdown():
    table = ExperimentTable("E0", "demo", ["a", "b"])
    table.add_row(1, "x")
    table.add_row(2, "y")
    table.add_note("a note")
    text = table.render()
    assert "[E0] demo" in text and "a note" in text
    markdown = table.markdown()
    assert markdown.startswith("### E0")
    assert "| a | b |" in markdown
    assert "- a note" in markdown
