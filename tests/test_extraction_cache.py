"""Tests for the record-grain extraction cache (§3.3)."""

import numpy as np
import pytest

from repro.errors import ETLError
from repro.etl.cache import ExtractionCache


def _cols(n=10, names=("sample_time", "sample_value")):
    return {name: np.arange(n, dtype=np.int64) for name in names}


def test_miss_then_hit():
    cache = ExtractionCache()
    assert cache.get("f1", 1, ["sample_value"]) is None
    cache.put("f1", 1, 100, _cols())
    got = cache.get("f1", 1, ["sample_value"])
    assert got is not None
    assert list(got) == ["sample_value"]
    assert cache.stats.hits == 1 and cache.stats.misses == 1


def test_partial_columns_is_miss_then_widen():
    cache = ExtractionCache()
    cache.put("f1", 1, 100, _cols(names=("sample_value",)))
    assert cache.get("f1", 1, ["sample_time"]) is None
    cache.put("f1", 1, 100, _cols(names=("sample_time",)))
    # Widened entry now serves both columns.
    assert cache.get("f1", 1, ["sample_time", "sample_value"]) is not None
    assert cache.stats.widenings == 1


def test_staleness_validate_file():
    cache = ExtractionCache()
    cache.put("f1", 1, mtime_ns=100, columns=_cols())
    cache.put("f1", 2, mtime_ns=100, columns=_cols())
    assert cache.validate_file("f1", 100)  # unchanged
    assert len(cache) == 2
    assert not cache.validate_file("f1", 200)  # newer mtime: stale
    assert len(cache) == 0
    assert cache.stats.stale_drops == 2
    # Unknown files are trivially valid.
    assert cache.validate_file("ghost", 5)


def test_lru_eviction_order():
    entry_bytes = sum(a.nbytes for a in _cols().values())
    cache = ExtractionCache(budget_bytes=entry_bytes * 2)
    cache.put("f", 1, 1, _cols())
    cache.put("f", 2, 1, _cols())
    cache.get("f", 1, ["sample_value"])  # touch 1
    cache.put("f", 3, 1, _cols())
    assert ("f", 2) not in cache
    assert ("f", 1) in cache and ("f", 3) in cache


def test_fifo_eviction_order():
    entry_bytes = sum(a.nbytes for a in _cols().values())
    cache = ExtractionCache(budget_bytes=entry_bytes * 2, policy="fifo")
    cache.put("f", 1, 1, _cols())
    cache.put("f", 2, 1, _cols())
    cache.get("f", 1, ["sample_value"])
    cache.put("f", 3, 1, _cols())
    assert ("f", 1) not in cache


def test_cost_policy_prefers_keeping_expensive():
    entry_bytes = sum(a.nbytes for a in _cols().values())
    cache = ExtractionCache(budget_bytes=entry_bytes * 2, policy="cost")
    cache.put("f", 1, 1, _cols(), cost_estimate=100.0)
    cache.put("f", 2, 1, _cols(), cost_estimate=0.001)
    cache.put("f", 3, 1, _cols(), cost_estimate=50.0)
    assert ("f", 2) not in cache  # cheapest to recompute was evicted
    assert ("f", 1) in cache


def test_budget_never_exceeded():
    entry_bytes = sum(a.nbytes for a in _cols().values())
    cache = ExtractionCache(budget_bytes=entry_bytes * 3 + 8)
    for seq in range(20):
        cache.put("f", seq, 1, _cols())
        assert cache.used_bytes <= cache.budget_bytes


def test_oversized_entry_not_admitted():
    cache = ExtractionCache(budget_bytes=16)
    assert not cache.put("f", 1, 1, _cols(n=1000))
    assert len(cache) == 0


def test_epoch_advances_on_mutation():
    cache = ExtractionCache()
    epoch = cache.epoch
    cache.put("f", 1, 1, _cols())
    assert cache.epoch > epoch
    epoch = cache.epoch
    cache.invalidate_file("f")
    assert cache.epoch > epoch


def test_contents_and_render():
    cache = ExtractionCache()
    cache.put("f1", 1, 1, _cols())
    cache.get("f1", 1, ["sample_value"])
    contents = cache.contents()
    assert contents[0][0] == "f1" and contents[0][3] == 1
    assert "f1" in cache.render()
    assert cache.cached_seq_nos("f1") == [1]


def test_clear():
    cache = ExtractionCache()
    cache.put("f1", 1, 1, _cols())
    cache.clear()
    assert len(cache) == 0 and cache.used_bytes == 0


def test_unknown_policy_rejected():
    with pytest.raises(ETLError):
        ExtractionCache(policy="magic")


def test_over_budget_widening_keeps_existing_entry():
    """Regression: a widening that exceeds the whole budget used to drop
    the previously cached columns before noticing it was over budget."""
    base = _cols(n=10, names=("sample_value",))
    entry_bytes = sum(a.nbytes for a in base.values())
    cache = ExtractionCache(budget_bytes=entry_bytes + 8)
    assert cache.put("f1", 1, 100, base)
    huge = {"sample_time": np.arange(1000, dtype=np.int64)}
    assert not cache.put("f1", 1, 100, huge)  # rejected: would not fit
    # The original columns must still be served.
    assert cache.get("f1", 1, ["sample_value"]) is not None
    assert cache.used_bytes == entry_bytes
    assert len(cache) == 1


def test_rejected_widening_counts_no_widening():
    cache = ExtractionCache(budget_bytes=160)
    cache.put("f1", 1, 100, _cols(n=10, names=("sample_value",)))
    cache.put("f1", 1, 100, _cols(n=1000, names=("sample_time",)))
    assert cache.stats.widenings == 0


def test_per_uri_index_tracks_all_mutation_paths():
    entry_bytes = sum(a.nbytes for a in _cols().values())
    cache = ExtractionCache(budget_bytes=entry_bytes * 2)
    cache.put("a", 1, 1, _cols())
    cache.put("b", 2, 1, _cols())
    assert cache.cached_seq_nos("a") == [1]
    assert cache.cached_seq_nos("b") == [2]
    # Eviction must drop the index entry too.
    cache.put("b", 3, 1, _cols())  # evicts ("a", 1) under LRU
    assert cache.cached_seq_nos("a") == []
    assert cache.cached_seq_nos("b") == [2, 3]
    # Invalidation drops exactly that file's entries.
    assert cache.invalidate_file("b") == 2
    assert cache.cached_seq_nos("b") == []
    assert len(cache) == 0
    # Clear resets the index as well.
    cache.put("c", 5, 1, _cols())
    cache.clear()
    assert cache.cached_seq_nos("c") == []


# ---------------------------------------------------------------------------
# Invariants and multi-threaded stress (the service shares one cache)
# ---------------------------------------------------------------------------


def test_check_invariants_passes_on_healthy_cache():
    cache = ExtractionCache(budget_bytes=1 << 20)
    for i in range(8):
        cache.put(f"f{i % 3}", i, 100, _cols())
    cache.invalidate_file("f1")
    cache.check_invariants()


def test_check_invariants_detects_corruption():
    from repro.errors import CacheInvariantError

    cache = ExtractionCache()
    cache.put("f1", 1, 100, _cols())
    cache._bytes += 13  # simulate a bookkeeping bug
    with pytest.raises(CacheInvariantError):
        cache.check_invariants()


def test_protected_entries_survive_eviction_pressure():
    entry_bytes = sum(a.nbytes for a in _cols().values())
    cache = ExtractionCache(budget_bytes=entry_bytes * 2)
    cache.put("a", 1, 1, _cols())
    cache.protect("a", 1)
    cache.put("b", 1, 1, _cols())
    cache.put("c", 1, 1, _cols())  # over budget: must not evict ("a", 1)
    assert ("a", 1) in cache
    cache.check_invariants()  # overcommit is legal while protected
    cache.unprotect("a", 1)   # protection lifted: budget re-enforced
    assert cache.used_bytes <= cache.budget_bytes
    cache.check_invariants()


def test_unprotect_requires_protect():
    cache = ExtractionCache()
    with pytest.raises(ETLError):
        cache.unprotect("nope", 1)


def test_randomized_multithreaded_stress_keeps_invariants():
    """The satellite stress test: hammer one cache from many threads with
    a randomized mix of every mutation, assert invariants throughout."""
    import random
    import threading

    entry_bytes = sum(a.nbytes for a in _cols().values())
    cache = ExtractionCache(budget_bytes=entry_bytes * 8)
    uris = [f"file-{i}.mseed" for i in range(6)]
    errors: list[BaseException] = []
    barrier = threading.Barrier(6)

    def worker(seed: int) -> None:
        rng = random.Random(seed)
        try:
            barrier.wait(timeout=10)
            for step in range(400):
                uri = rng.choice(uris)
                seq = rng.randrange(8)
                op = rng.random()
                if op < 0.45:
                    cache.put(uri, seq, 100, _cols(n=rng.randrange(4, 40)))
                elif op < 0.75:
                    cache.get(uri, seq, ["sample_value"])
                elif op < 0.85:
                    cache.protect(uri, seq)
                    cache.put(uri, seq, 100, _cols())
                    cache.unprotect(uri, seq)
                elif op < 0.93:
                    cache.invalidate_file(uri)
                else:
                    cache.validate_file(uri, rng.choice([100, 200]))
                if step % 50 == 0:
                    cache.check_invariants()
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(seed,))
               for seed in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not errors, errors[0]
    cache.check_invariants()
    assert cache.used_bytes <= cache.budget_bytes
    stats = cache.stats
    assert stats.admissions > 0 and stats.lookups > 0
