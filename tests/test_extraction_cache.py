"""Tests for the record-grain extraction cache (§3.3)."""

import numpy as np
import pytest

from repro.errors import ETLError
from repro.etl.cache import ExtractionCache


def _cols(n=10, names=("sample_time", "sample_value")):
    return {name: np.arange(n, dtype=np.int64) for name in names}


def test_miss_then_hit():
    cache = ExtractionCache()
    assert cache.get("f1", 1, ["sample_value"]) is None
    cache.put("f1", 1, 100, _cols())
    got = cache.get("f1", 1, ["sample_value"])
    assert got is not None
    assert list(got) == ["sample_value"]
    assert cache.stats.hits == 1 and cache.stats.misses == 1


def test_partial_columns_is_miss_then_widen():
    cache = ExtractionCache()
    cache.put("f1", 1, 100, _cols(names=("sample_value",)))
    assert cache.get("f1", 1, ["sample_time"]) is None
    cache.put("f1", 1, 100, _cols(names=("sample_time",)))
    # Widened entry now serves both columns.
    assert cache.get("f1", 1, ["sample_time", "sample_value"]) is not None
    assert cache.stats.widenings == 1


def test_staleness_validate_file():
    cache = ExtractionCache()
    cache.put("f1", 1, mtime_ns=100, columns=_cols())
    cache.put("f1", 2, mtime_ns=100, columns=_cols())
    assert cache.validate_file("f1", 100)  # unchanged
    assert len(cache) == 2
    assert not cache.validate_file("f1", 200)  # newer mtime: stale
    assert len(cache) == 0
    assert cache.stats.stale_drops == 2
    # Unknown files are trivially valid.
    assert cache.validate_file("ghost", 5)


def test_lru_eviction_order():
    entry_bytes = sum(a.nbytes for a in _cols().values())
    cache = ExtractionCache(budget_bytes=entry_bytes * 2)
    cache.put("f", 1, 1, _cols())
    cache.put("f", 2, 1, _cols())
    cache.get("f", 1, ["sample_value"])  # touch 1
    cache.put("f", 3, 1, _cols())
    assert ("f", 2) not in cache
    assert ("f", 1) in cache and ("f", 3) in cache


def test_fifo_eviction_order():
    entry_bytes = sum(a.nbytes for a in _cols().values())
    cache = ExtractionCache(budget_bytes=entry_bytes * 2, policy="fifo")
    cache.put("f", 1, 1, _cols())
    cache.put("f", 2, 1, _cols())
    cache.get("f", 1, ["sample_value"])
    cache.put("f", 3, 1, _cols())
    assert ("f", 1) not in cache


def test_cost_policy_prefers_keeping_expensive():
    entry_bytes = sum(a.nbytes for a in _cols().values())
    cache = ExtractionCache(budget_bytes=entry_bytes * 2, policy="cost")
    cache.put("f", 1, 1, _cols(), cost_estimate=100.0)
    cache.put("f", 2, 1, _cols(), cost_estimate=0.001)
    cache.put("f", 3, 1, _cols(), cost_estimate=50.0)
    assert ("f", 2) not in cache  # cheapest to recompute was evicted
    assert ("f", 1) in cache


def test_budget_never_exceeded():
    entry_bytes = sum(a.nbytes for a in _cols().values())
    cache = ExtractionCache(budget_bytes=entry_bytes * 3 + 8)
    for seq in range(20):
        cache.put("f", seq, 1, _cols())
        assert cache.used_bytes <= cache.budget_bytes


def test_oversized_entry_not_admitted():
    cache = ExtractionCache(budget_bytes=16)
    assert not cache.put("f", 1, 1, _cols(n=1000))
    assert len(cache) == 0


def test_epoch_advances_on_mutation():
    cache = ExtractionCache()
    epoch = cache.epoch
    cache.put("f", 1, 1, _cols())
    assert cache.epoch > epoch
    epoch = cache.epoch
    cache.invalidate_file("f")
    assert cache.epoch > epoch


def test_contents_and_render():
    cache = ExtractionCache()
    cache.put("f1", 1, 1, _cols())
    cache.get("f1", 1, ["sample_value"])
    contents = cache.contents()
    assert contents[0][0] == "f1" and contents[0][3] == 1
    assert "f1" in cache.render()
    assert cache.cached_seq_nos("f1") == [1]


def test_clear():
    cache = ExtractionCache()
    cache.put("f1", 1, 1, _cols())
    cache.clear()
    assert len(cache) == 0 and cache.used_bytes == 0


def test_unknown_policy_rejected():
    with pytest.raises(ETLError):
        ExtractionCache(policy="magic")


def test_over_budget_widening_keeps_existing_entry():
    """Regression: a widening that exceeds the whole budget used to drop
    the previously cached columns before noticing it was over budget."""
    base = _cols(n=10, names=("sample_value",))
    entry_bytes = sum(a.nbytes for a in base.values())
    cache = ExtractionCache(budget_bytes=entry_bytes + 8)
    assert cache.put("f1", 1, 100, base)
    huge = {"sample_time": np.arange(1000, dtype=np.int64)}
    assert not cache.put("f1", 1, 100, huge)  # rejected: would not fit
    # The original columns must still be served.
    assert cache.get("f1", 1, ["sample_value"]) is not None
    assert cache.used_bytes == entry_bytes
    assert len(cache) == 1


def test_rejected_widening_counts_no_widening():
    cache = ExtractionCache(budget_bytes=160)
    cache.put("f1", 1, 100, _cols(n=10, names=("sample_value",)))
    cache.put("f1", 1, 100, _cols(n=1000, names=("sample_time",)))
    assert cache.stats.widenings == 0


def test_per_uri_index_tracks_all_mutation_paths():
    entry_bytes = sum(a.nbytes for a in _cols().values())
    cache = ExtractionCache(budget_bytes=entry_bytes * 2)
    cache.put("a", 1, 1, _cols())
    cache.put("b", 2, 1, _cols())
    assert cache.cached_seq_nos("a") == [1]
    assert cache.cached_seq_nos("b") == [2]
    # Eviction must drop the index entry too.
    cache.put("b", 3, 1, _cols())  # evicts ("a", 1) under LRU
    assert cache.cached_seq_nos("a") == []
    assert cache.cached_seq_nos("b") == [2, 3]
    # Invalidation drops exactly that file's entries.
    assert cache.invalidate_file("b") == 2
    assert cache.cached_seq_nos("b") == []
    assert len(cache) == 0
    # Clear resets the index as well.
    cache.put("c", 5, 1, _cols())
    cache.clear()
    assert cache.cached_seq_nos("c") == []
