"""Tests for the mSEED record layer (fixed header + blockettes)."""

import numpy as np
import pytest

from repro.errors import CorruptRecordError
from repro.mseed import encodings
from repro.mseed.records import (
    DEFAULT_RECORD_LENGTH,
    decode_header,
    decode_record,
    encode_record,
)
from repro.util.timefmt import from_ymd


def _make(**overrides):
    params = dict(
        sequence_number=7,
        quality="D",
        station="HGN",
        location="",
        channel="BHZ",
        network="NL",
        start_time_us=from_ymd(2010, 1, 12, 22, 0, 0, 123456),
        samples=np.arange(100, dtype=np.int32),
        sample_rate_factor=40,
        sample_rate_multiplier=1,
        encoding=encodings.ENC_STEIM2,
    )
    params.update(overrides)
    return encode_record(**params)


def test_record_is_fixed_length():
    blob, encoded = _make()
    assert len(blob) == DEFAULT_RECORD_LENGTH
    assert encoded == 100


def test_header_fields_roundtrip():
    blob, _ = _make()
    header = decode_header(blob)
    assert header.sequence_number == 7
    assert header.quality == "D"
    assert header.station == "HGN"
    assert header.location == ""
    assert header.channel == "BHZ"
    assert header.network == "NL"
    assert header.sample_count == 100
    assert header.sample_rate == 40.0
    assert header.encoding == encodings.ENC_STEIM2
    assert header.record_length == DEFAULT_RECORD_LENGTH
    assert header.timing_quality == 100
    # Microsecond precision survives through blockette 1001.
    assert header.start_time_us == from_ymd(2010, 1, 12, 22, 0, 0, 123456)


def test_header_decodable_from_first_64_bytes():
    blob, _ = _make()
    header = decode_header(blob[:64])
    assert header.station == "HGN"
    assert header.record_length == DEFAULT_RECORD_LENGTH


def test_source_id_and_end_time():
    blob, _ = _make()
    header = decode_header(blob)
    assert header.source_id == "NL.HGN..BHZ"
    expected_span = round(99 * 1_000_000 / 40.0)
    assert header.end_time_us - header.start_time_us == expected_span


def test_payload_roundtrip():
    samples = np.cumsum(np.random.default_rng(0).integers(-50, 50, 200))
    blob, encoded = _make(samples=samples.astype(np.int32))
    record = decode_record(blob)
    assert np.array_equal(record.samples, samples[:encoded])


def test_sample_times_are_exact_microseconds():
    blob, encoded = _make()
    record = decode_record(blob)
    times = record.sample_times_us()
    assert len(times) == encoded
    assert times[0] == record.header.start_time_us
    assert times[1] - times[0] == 25_000  # 40 Hz


def test_sub_hz_sample_rate():
    blob, _ = _make(sample_rate_factor=-10, sample_rate_multiplier=1,
                    samples=np.arange(10, dtype=np.int32))
    header = decode_header(blob)
    assert header.sample_rate == pytest.approx(0.1)


def test_invalid_quality_rejected():
    with pytest.raises(CorruptRecordError):
        _make(quality="X")


def test_station_too_long_rejected():
    with pytest.raises(CorruptRecordError):
        _make(station="TOOLONG")


def test_sequence_number_range():
    with pytest.raises(CorruptRecordError):
        _make(sequence_number=1_000_000)


def test_non_power_of_two_record_length():
    with pytest.raises(CorruptRecordError):
        _make(record_length=500)


def test_record_length_4096():
    blob, encoded = _make(record_length=4096,
                          samples=np.arange(5000, dtype=np.int32))
    assert len(blob) == 4096
    assert encoded > 100
    record = decode_record(blob)
    assert record.header.record_length == 4096


def test_decode_header_rejects_garbage():
    with pytest.raises(CorruptRecordError):
        decode_header(b"\x00" * 48)
    with pytest.raises(CorruptRecordError):
        decode_header(b"short")


def test_decode_record_rejects_truncation():
    blob, _ = _make()
    with pytest.raises(CorruptRecordError):
        decode_record(blob[:256])


def test_time_correction_applied_when_flag_clear():
    blob, _ = _make()
    raw = bytearray(blob)
    # time correction field lives at offset 40..44 (0.0001 s units)
    raw[40:44] = (50).to_bytes(4, "big", signed=True)
    header = decode_header(bytes(raw))
    base = decode_header(blob).start_time_us
    assert header.start_time_us == base + 5000


def test_float_payload_record():
    samples = np.array([1.5, -2.25, 3.75], dtype=np.float64)
    blob, encoded = _make(samples=samples, encoding=encodings.ENC_FLOAT64)
    record = decode_record(blob)
    assert np.allclose(record.samples, samples[:encoded])
