"""The concurrent query service: coalescing, fairness, admission, safety."""

import threading
import time

import pytest

from repro.errors import AdmissionError, ServiceClosedError
from repro.etl.mseed_adapter import MSeedAdapter
from repro.seismology.warehouse import SeismicWarehouse
from repro.service.admission import AdmissionController
from repro.service.coalescer import ExtractionCoalescer


class CountingAdapter(MSeedAdapter):
    """MSeedAdapter that counts extract() calls per file, optionally slowly.

    The delay widens the window in which concurrent sessions' extractions
    overlap, so coalescing (not lucky cache timing) is what the asserts
    exercise.
    """

    def __init__(self, delay_s: float = 0.0) -> None:
        super().__init__()
        self.delay_s = delay_s
        self.extract_calls: dict[str, int] = {}
        self._lock = threading.Lock()

    def extract(self, repo, uri, seq_nos, needed):
        with self._lock:
            self.extract_calls[uri] = self.extract_calls.get(uri, 0) + 1
        if self.delay_s:
            time.sleep(self.delay_s)
        return super().extract(repo, uri, seq_nos, needed)


MULTI_FILE_QUERY = (
    "SELECT MIN(D.sample_value), MAX(D.sample_value), COUNT(*) "
    "FROM mseed.dataview"
)


def test_sixteen_concurrent_identical_queries_extract_once(tiny_repo):
    """The acceptance criterion: N identical in-flight queries, one
    extraction per file — the single-flight coalescer at work."""
    adapter = CountingAdapter(delay_s=0.05)
    wh = SeismicWarehouse(tiny_repo.root, mode="lazy", adapter=adapter,
                          enable_recycler=False)
    with wh.serve(max_workers=16) as svc:
        sessions = [svc.session(f"client-{i}") for i in range(16)]
        futures = [s.submit(MULTI_FILE_QUERY) for s in sessions]
        outcomes = [f.result(timeout=120) for f in futures]
    rows = [tuple(o.result.rows()[0]) for o in outcomes]
    assert len(set(rows)) == 1  # all sessions agree
    # The coalescing guarantee: every file was extracted exactly once,
    # despite 16 sessions needing it concurrently.
    assert adapter.extract_calls, "queries never reached extraction"
    assert all(count == 1 for count in adapter.extract_calls.values()), \
        adapter.extract_calls
    # At least one session shared another session's extraction, and the
    # per-session reports distinguish the two kinds of work.
    total_here = sum(o.rows_extracted_here for o in outcomes)
    total_waited = sum(o.rows_coalesced for o in outcomes)
    assert total_waited > 0
    assert total_here > 0


def test_concurrent_distinct_queries_match_serial_results(demo_repo):
    """Concurrency must never change answers (with parallel extraction)."""
    serial = SeismicWarehouse(demo_repo.root, mode="lazy")
    queries = [
        ("SELECT MIN(D.sample_value), MAX(D.sample_value), COUNT(*) "
         f"FROM mseed.dataview WHERE F.station = '{station}' "
         f"AND F.channel = '{channel}'")
        for station in ("HGN", "DBN", "ISK")
        for channel in ("BHE", "BHZ")
    ]
    expected = [serial.query(q).rows() for q in queries]

    wh = SeismicWarehouse(demo_repo.root, mode="lazy")
    with wh.serve(max_workers=6, extract_workers=2) as svc:
        sessions = [svc.session(f"s{i}") for i in range(len(queries))]
        futures = [s.submit(q) for s, q in zip(sessions, queries)]
        outcomes = [f.result(timeout=120) for f in futures]
    for outcome, rows in zip(outcomes, expected):
        assert outcome.result.rows() == rows


def test_repeated_service_queries_hit_cache(tiny_repo):
    adapter = CountingAdapter()
    wh = SeismicWarehouse(tiny_repo.root, mode="lazy", adapter=adapter,
                          enable_recycler=False)
    with wh.serve(max_workers=4) as svc:
        session = svc.session("repeat")
        session.query(MULTI_FILE_QUERY)
        first_calls = dict(adapter.extract_calls)
        session.query(MULTI_FILE_QUERY)
    assert adapter.extract_calls == first_calls  # warm pass: zero extraction


def test_admission_controller_round_robin_fairness():
    admission = AdmissionController(queue_depth=32, fair=True)
    for i in range(10):
        admission.submit("greedy", f"g{i}")
    admission.submit("interactive", "i0")
    order = [admission.next_item(timeout=0) for _ in range(4)]
    # The interactive session is served on the second slot, not slot 11.
    assert order[0] == "g0"
    assert order[1] == "i0"
    assert order[2:] == ["g1", "g2"]


def test_admission_controller_global_fifo_when_unfair():
    admission = AdmissionController(queue_depth=32, fair=False)

    class Item:
        def __init__(self, seq, tag):
            self.submit_seq = seq
            self.tag = tag

    admission.submit("a", Item(1, "a1"))
    admission.submit("a", Item(2, "a2"))
    admission.submit("b", Item(3, "b1"))
    tags = [admission.next_item(timeout=0).tag for _ in range(3)]
    assert tags == ["a1", "a2", "b1"]


def test_admission_queue_rejects_when_full(tiny_repo):
    adapter = CountingAdapter(delay_s=0.5)
    wh = SeismicWarehouse(tiny_repo.root, mode="lazy", adapter=adapter,
                          enable_recycler=False)
    with wh.serve(max_workers=1, queue_depth=2) as svc:
        blocker = svc.session("blocker")
        first = blocker.submit(MULTI_FILE_QUERY)  # occupies the worker
        time.sleep(0.1)  # let the worker dequeue it
        backlog = [blocker.submit(MULTI_FILE_QUERY) for _ in range(2)]
        with pytest.raises(AdmissionError):
            for _ in range(8):  # the queue is full; some submit must bounce
                backlog.append(blocker.submit(MULTI_FILE_QUERY))
        rejected = svc.stats().admission.rejected
        assert rejected >= 1
        for future in [first, *backlog]:
            future.result(timeout=120)


def test_closed_service_rejects_submissions(tiny_repo):
    wh = SeismicWarehouse(tiny_repo.root, mode="lazy")
    svc = wh.serve(max_workers=1)
    svc.close()
    with pytest.raises(ServiceClosedError):
        svc.submit("anyone", "SELECT COUNT(*) FROM mseed.files")
    # Hooks are detached so the warehouse keeps working single-threaded.
    assert wh.pipeline.binding.coalescer is None
    assert wh.query("SELECT COUNT(*) FROM mseed.files").scalar() == \
        len(tiny_repo.entries)


def test_coalescer_claim_partition_and_publish():
    coalescer = ExtractionCoalescer()
    first = coalescer.claim("f.mseed", [1, 2, 3], ["sample_value"])
    assert first.led_seqs == [1, 2, 3] and not first.waits
    second = coalescer.claim("f.mseed", [2, 3, 4], ["sample_value"])
    assert second.led_seqs == [4]
    assert list(second.waits.values()) == [[2, 3]]
    import numpy as np

    payload = {seq: {"sample_value": np.arange(4)} for seq in (1, 2, 3)}
    coalescer.publish("f.mseed", first.flight, payload)
    got = coalescer.wait(first.flight, [2, 3], timeout=1.0)
    assert got is not None and sorted(got) == [2, 3]
    # All keys retired: a fresh claim leads again.
    third = coalescer.claim("f.mseed", [1, 2], ["sample_value"])
    assert third.led_seqs == [1, 2]
    coalescer.publish("f.mseed", second.flight, {})
    coalescer.publish("f.mseed", third.flight, {})


def test_coalescer_failed_flight_falls_back():
    coalescer = ExtractionCoalescer()
    lead = coalescer.claim("g.mseed", [7], ["sample_value"])
    wait = coalescer.claim("g.mseed", [7], ["sample_value"])
    coalescer.publish("g.mseed", lead.flight, {}, error=RuntimeError("boom"))
    flight = next(iter(wait.waits))
    assert coalescer.wait(flight, [7], timeout=1.0) is None
    # The failure retired the keys: the waiter can claim leadership now.
    retry = coalescer.claim("g.mseed", [7], ["sample_value"])
    assert retry.led_seqs == [7]
    coalescer.publish("g.mseed", retry.flight, {})


def test_service_stats_latencies(tiny_repo):
    wh = SeismicWarehouse(tiny_repo.root, mode="lazy")
    with wh.serve(max_workers=2) as svc:
        session = svc.session()
        for _ in range(5):
            session.query("SELECT COUNT(*) FROM mseed.files")
        stats = svc.stats()
    assert stats.completed == 5 and stats.failed == 0
    assert len(stats.latencies_s) == 5
    assert stats.percentile(99) >= stats.percentile(50) >= 0.0


def test_service_query_error_propagates(tiny_repo):
    wh = SeismicWarehouse(tiny_repo.root, mode="lazy")
    with wh.serve(max_workers=1) as svc:
        future = svc.submit("s", "SELECT nonsense FROM nowhere")
        with pytest.raises(Exception):
            future.result(timeout=60)
        assert svc.stats().failed == 1
        # The worker survives a failed query.
        ok = svc.session("s").query("SELECT COUNT(*) FROM mseed.files")
    assert ok.result.scalar() == len(tiny_repo.entries)
