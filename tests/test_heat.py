"""Access-heat tracking (the adaptive-promotion sensor)."""

import threading

import pytest

from repro.etl.heat import AccessHeatTracker, HeatUnit


class FakeClock:
    def __init__(self, t: float = 1000.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def tracker(clock):
    return AccessHeatTracker(half_life_s=10.0, clock=clock)


def test_touch_accumulates_and_orders(tracker):
    tracker.touch("a.seed", 1, ["sample_value"], kind="extract")
    tracker.touch("a.seed", 1, ["sample_value"], kind="cache_hit")
    tracker.touch("b.seed", 7, ["sample_value"], kind="cache_hit")
    hottest = tracker.hottest(10)
    assert [(u, s) for u, s, _score, _unit in hottest] == \
        [("a.seed", 1), ("b.seed", 7)]
    assert tracker.score_of("a.seed", 1) == pytest.approx(2.0)
    assert tracker.score_of("b.seed", 7) == pytest.approx(1.0)


def test_exponential_decay_half_life(tracker, clock):
    tracker.touch("a.seed", 1, ["sample_value"])
    clock.advance(10.0)  # one half-life
    assert tracker.score_of("a.seed", 1) == pytest.approx(0.5)
    clock.advance(10.0)
    assert tracker.score_of("a.seed", 1) == pytest.approx(0.25)


def test_decay_applies_before_new_touches(tracker, clock):
    tracker.touch("a.seed", 1, ["sample_value"])
    clock.advance(20.0)  # score decays to 0.25
    tracker.touch("a.seed", 1, ["sample_value"])
    assert tracker.score_of("a.seed", 1) == pytest.approx(1.25)


def test_cold_units_fall_below_hot_ones(tracker, clock):
    for _ in range(5):
        tracker.touch("hot.seed", 1, ["sample_value"])
    tracker.touch("cold.seed", 2, ["sample_value"])
    clock.advance(30.0)
    tracker.touch("hot.seed", 1, ["sample_value"])  # still in demand
    hot = tracker.hottest(10, min_score=1.0)
    assert [(u, s) for u, s, _sc, _un in hot] == [("hot.seed", 1)]


def test_touch_units_bulk_and_kinds(tracker):
    tracker.touch_units("a.seed", [1, 2, 3], ["sample_value"],
                        kind="extract", nbytes=3000)
    tracker.touch_units("a.seed", [1, 2], ["sample_time"],
                        kind="cache_hit")
    tracker.touch("a.seed", 1, ["sample_value"], kind="eager_hit")
    snapshot = {(u, s): unit for u, s, _sc, unit in tracker.snapshot()}
    unit = snapshot[("a.seed", 1)]
    assert unit.extractions == 1
    assert unit.cache_hits == 1
    assert unit.eager_hits == 1
    assert unit.columns == {"sample_value", "sample_time"}
    assert unit.nbytes == 1000  # evenly split estimate
    assert tracker.stats.touches == 6


def test_unknown_kind_rejected(tracker):
    with pytest.raises(ValueError, match="unknown access kind"):
        tracker.touch("a.seed", 1, ["v"], kind="warm_fuzzy")


def test_hottest_respects_min_score_and_exclude(tracker):
    for seq in range(4):
        for _ in range(seq + 1):
            tracker.touch("a.seed", seq, ["v"])
    picked = tracker.hottest(10, min_score=2.0, exclude={("a.seed", 3)})
    assert [(u, s) for u, s, _sc, _un in picked] == \
        [("a.seed", 2), ("a.seed", 1)]
    assert len(tracker.hottest(1, min_score=0.0)) == 1


def test_forget_file_drops_only_that_file(tracker):
    tracker.touch("a.seed", 1, ["v"])
    tracker.touch("a.seed", 2, ["v"])
    tracker.touch("b.seed", 1, ["v"])
    assert tracker.forget_file("a.seed") == 2
    assert len(tracker) == 1
    assert tracker.score_of("b.seed", 1) > 0
    assert tracker.forget_file("missing.seed") == 0


def test_export_import_roundtrip(tracker, clock):
    tracker.touch_units("a.seed", [1, 2], ["sample_value"],
                        kind="extract", nbytes=2000)
    clock.advance(5.0)
    tracker.touch("a.seed", 1, ["sample_time"], kind="cache_hit")
    state = tracker.export_state()

    other = AccessHeatTracker(half_life_s=10.0, clock=clock)
    assert other.import_state(state) == 2
    for uri, seq in [("a.seed", 1), ("a.seed", 2)]:
        assert other.score_of(uri, seq) == \
            pytest.approx(tracker.score_of(uri, seq))
    snapshot = {(u, s): unit for u, s, _sc, unit in other.snapshot()}
    assert snapshot[("a.seed", 1)].columns == {"sample_value", "sample_time"}
    assert other.stats.restored_units == 2


def test_import_keeps_hotter_side(tracker, clock):
    tracker.touch("a.seed", 1, ["v"])
    state = tracker.export_state()
    clock.advance(1.0)
    live = AccessHeatTracker(half_life_s=10.0, clock=clock)
    for _ in range(5):
        live.touch("a.seed", 1, ["v"])
    hot_score = live.score_of("a.seed", 1)
    live.import_state(state)  # colder snapshot must not clobber live heat
    assert live.score_of("a.seed", 1) == pytest.approx(hot_score)


def test_import_none_and_empty(tracker):
    assert tracker.import_state(None) == 0
    assert tracker.import_state({}) == 0


def test_state_is_json_serialisable(tracker):
    import json

    tracker.touch_units("a.seed", [1, 2], ["sample_value"], kind="extract")
    encoded = json.dumps(tracker.export_state())
    restored = AccessHeatTracker(half_life_s=10.0)
    assert restored.import_state(json.loads(encoded)) == 2


def test_concurrent_touches_are_consistent():
    tracker = AccessHeatTracker(half_life_s=1e9)  # no decay: exact counts

    def hammer(uri):
        for seq in range(50):
            for _ in range(10):
                tracker.touch(uri, seq, ["v"], kind="cache_hit")

    threads = [threading.Thread(target=hammer, args=(f"f{i}.seed",))
               for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(tracker) == 200
    assert tracker.stats.touches == 2000
    for uri, seq, score, unit in tracker.snapshot():
        assert score == pytest.approx(10.0)
        assert unit.cache_hits == 10


def test_decayed_zero_score_unit():
    unit = HeatUnit()
    assert unit.decayed(123.0, 10.0) == 0.0
