"""Tests for the eager ETL baseline."""

import pytest

from repro.seismology.warehouse import SeismicWarehouse


def test_eager_loads_everything_up_front(eager_wh, demo_repo):
    data = eager_wh.db.table("mseed.data")
    assert data.row_count == demo_repo.total_samples
    files = eager_wh.db.table("mseed.files")
    assert files.row_count == len(demo_repo.entries)


def test_eager_report_accounts_bytes(eager_wh, demo_repo):
    # Eager reads every payload byte (headers twice: harvest + extract).
    assert eager_wh.load_report.bytes_read >= demo_repo.total_bytes


def test_eager_queries_read_no_files(eager_wh):
    eager_wh.repo.reset_counters()
    eager_wh.query(
        "SELECT AVG(D.sample_value) FROM mseed.dataview "
        "WHERE F.station = 'ISK'")
    assert eager_wh.repo.reads == 0


def test_eager_data_join_keys_are_consistent(eager_wh):
    # Every D row joins to exactly one R row: the join loses nothing.
    d_count = eager_wh.query("SELECT COUNT(*) FROM mseed.data").scalar()
    joined = eager_wh.query(
        "SELECT COUNT(*) FROM mseed.records AS R, mseed.data AS D "
        "WHERE R.file_location = D.file_location AND R.seq_no = D.seq_no"
    ).scalar()
    assert joined == d_count


def test_eager_sample_counts_match_record_metadata(eager_wh):
    rows = eager_wh.query("""
        SELECT R.file_location, R.seq_no, R.sample_count, COUNT(*) AS actual
        FROM mseed.records AS R, mseed.data AS D
        WHERE R.file_location = D.file_location AND R.seq_no = D.seq_no
        GROUP BY R.file_location, R.seq_no, R.sample_count""").rows()
    assert rows
    for _uri, _seq, declared, actual in rows:
        assert declared == actual


def test_eager_delete_file_data(demo_repo):
    wh = SeismicWarehouse(demo_repo.root, mode="eager")
    uri = wh.repo.list_files()[0].uri
    before = wh.query("SELECT COUNT(*) FROM mseed.data").scalar()
    wh.pipeline.delete_file_data(uri)
    after = wh.query("SELECT COUNT(*) FROM mseed.data").scalar()
    assert after < before
    remaining = wh.query(
        f"SELECT COUNT(*) FROM mseed.data WHERE file_location = '{uri}'"
    ).scalar()
    assert remaining == 0


def test_eager_load_file_data_roundtrip(demo_repo):
    wh = SeismicWarehouse(demo_repo.root, mode="eager")
    uri = wh.repo.list_files()[0].uri
    before = wh.query("SELECT COUNT(*) FROM mseed.data").scalar()
    wh.pipeline.delete_file_data(uri)
    reloaded = wh.pipeline.load_file_data(uri)
    assert reloaded > 0
    assert wh.query("SELECT COUNT(*) FROM mseed.data").scalar() == before
