"""STA/LTA detector tests, including ground-truth event recovery."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mseed.inventory import find_station
from repro.mseed.synthesize import SeismicEvent, WaveformSynthesizer
from repro.seismology.stalta import (
    DetectedEvent,
    _moving_average,
    detect_events,
    detect_triggers,
    sta_lta_ratio,
)
from repro.util.timefmt import MICROS_PER_SECOND, from_ymd


def test_moving_average_matches_naive():
    values = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
    got = _moving_average(values, 3)
    assert got[2] == pytest.approx(2.0)
    assert got[4] == pytest.approx(4.0)
    # warm-up prefix uses partial windows
    assert got[0] == pytest.approx(1.0)
    assert got[1] == pytest.approx(1.5)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.floats(min_value=-1e3, max_value=1e3,
                       allow_nan=False), min_size=2, max_size=200),
    st.integers(min_value=1, max_value=50),
)
def test_moving_average_property(values, window):
    array = np.array(values)
    got = _moving_average(array, window)
    index = len(array) - 1
    start = max(0, index - window + 1)
    expected = array[start:index + 1].mean()
    assert got[index] == pytest.approx(expected, rel=1e-9, abs=1e-9)


def test_ratio_requires_sta_shorter_than_lta():
    with pytest.raises(ValueError):
        sta_lta_ratio(np.ones(100), 40.0, sta_seconds=15, lta_seconds=2)


def test_quiet_signal_never_triggers():
    rng = np.random.default_rng(0)
    noise = rng.normal(0, 100, 40 * 120)
    ratio = sta_lta_ratio(noise, 40.0)
    assert not detect_triggers(ratio, 3.5, 1.5)


def test_burst_triggers_once():
    rng = np.random.default_rng(1)
    signal = rng.normal(0, 50, 40 * 120)
    burst_start = 40 * 60
    t = np.arange(40 * 10) / 40.0
    signal[burst_start:burst_start + 40 * 10] += \
        4000 * np.exp(-t / 3) * np.sin(2 * np.pi * 2 * t)
    ratio = sta_lta_ratio(signal, 40.0)
    triggers = detect_triggers(ratio, 3.5, 1.5)
    assert len(triggers) == 1
    on_idx, off_idx = triggers[0]
    assert abs(on_idx - burst_start) < 40 * 3  # within 3 s of onset
    assert off_idx > on_idx


def test_detect_triggers_validates_thresholds():
    with pytest.raises(ValueError):
        detect_triggers(np.zeros(10), on_threshold=1.0, off_threshold=2.0)


def test_detect_events_on_synthetic_ground_truth():
    """The detector recovers an injected catalogue event."""
    station = find_station("HGN")
    channel = station.channels[2]  # BHZ
    t0 = from_ymd(2010, 1, 12, 22, 0)
    event = SeismicEvent(
        event_id=1, origin_time_us=t0 + 120 * MICROS_PER_SECOND,
        latitude=station.latitude + 0.1, longitude=station.longitude,
        magnitude=3.0, duration_s=20.0, dominant_freq_hz=2.0,
    )
    synth = WaveformSynthesizer([event], seed=8, noise_counts=120.0)
    n = int(40 * 300)
    wave = synth.synthesize(station, channel, t0, n)
    times = t0 + (np.arange(n) * 25_000).astype(np.int64)
    detections = detect_events(times, wave.astype(float), 40.0)
    assert len(detections) >= 1
    arrival = event.arrival_time_us(station)
    best = min(detections, key=lambda d: abs(d.onset_time_us - arrival))
    assert abs(best.onset_time_us - arrival) < 5 * MICROS_PER_SECOND
    assert best.peak_ratio > 3.5
    assert "event at" in best.render()


def test_detect_events_empty_input():
    assert detect_events(np.array([]), np.array([]), 40.0) == []


def test_detect_events_validates_alignment():
    with pytest.raises(ValueError):
        detect_events(np.array([1]), np.array([1.0, 2.0]), 40.0)


def test_hunt_events_through_warehouse(demo_repo, lazy_wh):
    """End to end: lazy fetch + detector find the injected events."""
    from repro.seismology.stalta import hunt_events

    # The demo repo injects events; hunt on a stream that observes one.
    detections = hunt_events(
        lazy_wh, "HGN", "BHZ",
        "2010-01-12T22:00:00.000", "2010-01-12T22:20:00.000",
        on_threshold=3.0,
    )
    # Only the files of that stream were extracted.
    touched = lazy_wh.files_extracted_by_last_query()
    assert all("HGN" in uri and "BHZ" in uri for uri in touched)
    assert isinstance(detections, list)
    for detection in detections:
        assert isinstance(detection, DetectedEvent)


def test_hunt_events_empty_window(lazy_wh):
    from repro.seismology.stalta import hunt_events

    detections = hunt_events(
        lazy_wh, "HGN", "BHZ",
        "2011-06-01T00:00:00.000", "2011-06-01T01:00:00.000")
    assert detections == []
