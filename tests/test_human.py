"""Tests for humanised formatting helpers."""

from repro.util.human import format_bytes, format_duration, format_table


def test_format_bytes_units():
    assert format_bytes(512) == "512 B"
    assert format_bytes(2048) == "2.00 KiB"
    assert format_bytes(3 * 1024 * 1024) == "3.00 MiB"
    assert format_bytes(5.5 * 1024 ** 3) == "5.50 GiB"


def test_format_bytes_negative():
    assert format_bytes(-100) == "-100 B"


def test_format_duration_ranges():
    assert format_duration(0.0000052).endswith("us")
    assert format_duration(0.012) == "12.0 ms"
    assert format_duration(2.5) == "2.50 s"
    assert format_duration(75) == "1m15.0s"
    assert format_duration(-0.5) == "-500.0 ms"


def test_format_table_alignment():
    text = format_table(["a", "long header"], [["1", "2"], ["333", "4"]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("a")
    # All rows padded to consistent width
    assert len(lines[1]) >= len("a") + 2 + len("long header")
