"""Tests for the repository abstraction."""

import time

import pytest

from repro.errors import FileMissingError, RepositoryError
from repro.mseed.repository import Repository, SimulatedRemoteRepository


def test_listing_is_sorted_and_relative(tiny_repo):
    repo = Repository(tiny_repo.root)
    infos = repo.list_files()
    assert len(infos) == len(tiny_repo.entries)
    uris = [info.uri for info in infos]
    assert uris == sorted(uris)
    assert all(not uri.startswith("/") for uri in uris)
    assert all(info.size > 0 for info in infos)


def test_stat_and_exists(tiny_repo):
    repo = Repository(tiny_repo.root)
    uri = repo.list_files()[0].uri
    info = repo.stat(uri)
    assert info.uri == uri
    assert repo.exists(uri)
    assert not repo.exists("nope/missing.mseed")


def test_open_counts_reads(tiny_repo):
    repo = Repository(tiny_repo.root)
    uri = repo.list_files()[0].uri
    assert repo.reads == 0
    with repo.open(uri) as handle:
        handle.read(10)
    assert repo.reads == 1
    assert repo.bytes_read > 0
    repo.reset_counters()
    assert repo.reads == 0 and repo.bytes_read == 0


def test_unsafe_uri_rejected(tiny_repo):
    repo = Repository(tiny_repo.root)
    with pytest.raises(RepositoryError):
        repo.stat("../outside.mseed")
    with pytest.raises(RepositoryError):
        repo.stat("/absolute.mseed")


def test_missing_file_error(tiny_repo):
    repo = Repository(tiny_repo.root)
    with pytest.raises(FileMissingError):
        repo.stat("ghost.mseed")


def test_bad_root_rejected(tmp_path):
    with pytest.raises(RepositoryError):
        Repository(tmp_path / "does-not-exist")


def test_touch_bumps_mtime(mutable_repo):
    repo = Repository(mutable_repo.root)
    uri = repo.list_files()[0].uri
    before = repo.stat(uri).mtime_ns
    repo.touch(uri)
    assert repo.stat(uri).mtime_ns > before


def test_overwrite_advances_mtime(mutable_repo):
    repo = Repository(mutable_repo.root)
    uri = repo.list_files()[0].uri
    before = repo.stat(uri).mtime_ns
    data = open(repo.path_of(uri), "rb").read()
    repo.overwrite(uri, data)
    assert repo.stat(uri).mtime_ns > before


def test_remove(mutable_repo):
    repo = Repository(mutable_repo.root)
    uri = repo.list_files()[0].uri
    count = len(repo.list_files())
    repo.remove(uri)
    assert len(repo.list_files()) == count - 1


def test_simulated_remote_latency(tiny_repo):
    fast = Repository(tiny_repo.root)
    slow = SimulatedRemoteRepository(tiny_repo.root, latency_s=0.01,
                                     bandwidth_bytes_per_s=1e9)
    uri = fast.list_files()[0].uri
    started = time.perf_counter()
    with slow.open(uri) as handle:
        handle.read()
    elapsed = time.perf_counter() - started
    assert elapsed >= 0.01
