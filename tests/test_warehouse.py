"""SeismicWarehouse facade tests across the three modes."""

import pytest

from repro.errors import ETLError
from repro.seismology import browse
from repro.seismology.queries import analytical_suite, fig1_query1
from repro.seismology.warehouse import SeismicWarehouse


def test_unknown_mode_rejected(demo_repo):
    with pytest.raises(ETLError):
        SeismicWarehouse(demo_repo.root, mode="psychic")


def test_load_report_shapes(demo_repo, lazy_wh, eager_wh, external_wh):
    assert lazy_wh.load_report.strategy.startswith("lazy")
    assert lazy_wh.load_report.samples_loaded == 0
    assert eager_wh.load_report.strategy == "eager"
    assert eager_wh.load_report.samples_loaded == demo_repo.total_samples
    assert external_wh.load_report.strategy == "external"
    assert external_wh.load_report.bytes_read == 0


def test_eager_loads_slower_than_lazy(demo_repo):
    import time

    t = time.perf_counter()
    SeismicWarehouse(demo_repo.root, mode="lazy")
    lazy_s = time.perf_counter() - t
    t = time.perf_counter()
    SeismicWarehouse(demo_repo.root, mode="eager")
    eager_s = time.perf_counter() - t
    assert eager_s > lazy_s * 2, (
        "eager initial loading must be substantially slower than "
        f"metadata-only loading (lazy {lazy_s:.3f}s vs eager {eager_s:.3f}s)"
    )


def test_storage_blowup_shape(demo_repo, lazy_wh, eager_wh):
    repo_bytes = lazy_wh.repository_bytes()
    assert repo_bytes == demo_repo.total_bytes
    # Metadata-only warehouse is much smaller than the repository...
    assert lazy_wh.warehouse_bytes() < repo_bytes
    # ...while the eager warehouse blows up several-fold (§4: 'up to 10x').
    assert eager_wh.warehouse_bytes() > 5 * repo_bytes


def test_browse_overview(lazy_wh):
    text = browse.station_overview(lazy_wh)
    assert "HGN" in text and "ISK" in text


def test_browse_time_coverage(lazy_wh):
    coverage = browse.time_coverage(lazy_wh, network="NL")
    assert all(row["network"] == "NL" for row in coverage)
    assert any(row["station"] == "HGN" for row in coverage)
    assert coverage[0]["first"].startswith("2010-01-12")


def test_browse_file_and_record_listing(lazy_wh):
    files = browse.file_listing(lazy_wh, station="ISK", channel="BHE")
    assert len(files) == 2  # two windows per stream in the fixture
    uri = files[0][0]
    records = browse.record_listing(lazy_wh, uri)
    assert records[0][0] == 1  # seq_no starts at 1
    assert len(records) == files[0][1]


def test_browse_external_mode_message(external_wh):
    assert "external" in browse.station_overview(external_wh)


def test_files_extracted_introspection(lazy_wh):
    lazy_wh.query(fig1_query1())
    touched = lazy_wh.files_extracted_by_last_query()
    assert len(touched) == 1


def test_cache_property_modes(lazy_wh, external_wh):
    assert lazy_wh.cache is not None
    assert external_wh.cache is None


def test_external_suite_adaptation():
    from repro.seismology.queries import suite_for_external

    suite = analytical_suite()
    adapted = suite_for_external(suite)
    assert len(adapted) == len(suite)
    q8 = next(s for s in adapted if s.qid == "Q8")
    assert "mseed.dataview" in q8.sql
    assert not q8.metadata_only


def test_defer_load(demo_repo):
    wh = SeismicWarehouse(demo_repo.root, mode="lazy", defer_load=True)
    assert wh.load_report is None
    assert wh.query("SELECT COUNT(*) FROM mseed.files").scalar() == 0
    wh.load()
    assert wh.load_report is not None
    assert wh.query("SELECT COUNT(*) FROM mseed.files").scalar() > 0


def test_repr(lazy_wh):
    assert "lazy" in repr(lazy_wh)
