"""Tests for multi-record file I/O and the header-only scan path."""

import numpy as np
import pytest

from repro.errors import CorruptRecordError
from repro.mseed import encodings
from repro.mseed.files import (
    file_time_span,
    read_file,
    read_file_bytes,
    read_records,
    scan_file_headers,
    write_mseed_file,
)
from repro.util.timefmt import from_ymd

T0 = from_ymd(2010, 1, 12, 22, 0)


def _write(tmp_path, samples, **kwargs):
    path = tmp_path / "NL.HGN..BHZ.2010.012.2200.mseed"
    defaults = dict(
        network="NL", station="HGN", location="", channel="BHZ",
        start_time_us=T0, sample_rate=40.0, samples=samples,
    )
    defaults.update(kwargs)
    count = write_mseed_file(path, **defaults)
    return path, count


def test_write_then_read_roundtrip(tmp_path):
    rng = np.random.default_rng(2)
    samples = np.cumsum(rng.integers(-60, 60, 5000)).astype(np.int32)
    path, n_records = _write(tmp_path, samples)
    assert n_records > 1
    records = read_file(path)
    assert len(records) == n_records
    rebuilt = np.concatenate([r.samples for r in records])
    assert np.array_equal(rebuilt, samples)


def test_record_sequence_numbers_and_times_chain(tmp_path):
    samples = np.arange(3000, dtype=np.int32)
    path, n_records = _write(tmp_path, samples)
    headers = scan_file_headers(path)
    assert [h.sequence_number for h in headers] == list(range(1, n_records + 1))
    # Every record starts exactly where the previous ended (+1 interval).
    for prev, cur in zip(headers, headers[1:]):
        assert cur.start_time_us == prev.end_time_us + 25_000


def test_scan_reads_only_headers(tmp_path):
    samples = np.arange(5000, dtype=np.int32)
    path, n_records = _write(tmp_path, samples)
    headers = scan_file_headers(path)
    assert len(headers) == n_records
    assert sum(h.sample_count for h in headers) == 5000


def test_selective_read(tmp_path):
    samples = np.arange(5000, dtype=np.int32)
    path, n_records = _write(tmp_path, samples)
    subset = read_records(path, [2, 4])
    assert [r.header.sequence_number for r in subset] == [2, 4]
    full = read_file(path)
    assert np.array_equal(subset[0].samples, full[1].samples)


def test_read_file_bytes(tmp_path):
    samples = np.arange(1000, dtype=np.int32)
    path, n_records = _write(tmp_path, samples)
    records = read_file_bytes(path.read_bytes())
    assert len(records) == n_records


def test_file_time_span(tmp_path):
    samples = np.arange(3000, dtype=np.int32)
    path, _ = _write(tmp_path, samples)
    headers = scan_file_headers(path)
    start, end = file_time_span(headers)
    assert start == T0
    assert end == headers[-1].end_time_us
    with pytest.raises(CorruptRecordError):
        file_time_span([])


def test_trailing_garbage_detected(tmp_path):
    samples = np.arange(1000, dtype=np.int32)
    path, _ = _write(tmp_path, samples)
    with open(path, "ab") as handle:
        handle.write(b"\x01" * 10)
    with pytest.raises(CorruptRecordError):
        scan_file_headers(path)


def test_zero_samples_rejected(tmp_path):
    with pytest.raises(CorruptRecordError):
        _write(tmp_path, np.array([], dtype=np.int32))


def test_non_integer_rate_rejected(tmp_path):
    with pytest.raises(CorruptRecordError):
        _write(tmp_path, np.arange(10, dtype=np.int32), sample_rate=39.7)


def test_sub_hz_file(tmp_path):
    samples = np.arange(100, dtype=np.int32)
    path, _ = _write(tmp_path, samples, sample_rate=0.5)
    headers = scan_file_headers(path)
    assert headers[0].sample_rate == pytest.approx(0.5)


def test_int32_encoding_file(tmp_path):
    samples = np.arange(2000, dtype=np.int32)
    path, n_records = _write(tmp_path, samples,
                             encoding=encodings.ENC_INT32)
    records = read_file(path)
    rebuilt = np.concatenate([r.samples for r in records])
    assert np.array_equal(rebuilt, samples)
    # INT32 packs exactly (512-64)/4 = 112 samples per record.
    assert records[0].header.sample_count == 112
