"""Tests for the persistent columnar storage engine.

Covers the ISSUE-2 checklist: codec round-trips (NULL masks, VARCHAR
dictionaries included), corrupted-checksum detection, the atomic-manifest
crash simulation, buffer-pool eviction under budget, and warm-start
equivalence (identical SELECT results across a restart with zero
re-extraction).
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.db.column import Column
from repro.db.exec.engine import Database
from repro.db.types import DataType
from repro.errors import CatalogError, CorruptSegmentError, StorageError
from repro.storage import (
    BufferPool,
    SegmentReader,
    SegmentWriter,
    TableStore,
)
from repro.storage.codecs import (
    CODEC_DELTA_FOR,
    CODEC_DICT,
    CODEC_FOR,
    CODEC_NAMES,
    CODEC_RLE,
    decode_array,
    encode_array,
)
from repro.storage.format import decode_page, encode_page


# ---------------------------------------------------------------------------
# Codecs
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("dtype,values", [
    (DataType.BIGINT, np.arange(5000, dtype=np.int64) * 3 - 77),
    (DataType.BIGINT, np.full(999, 123456789, dtype=np.int64)),
    (DataType.BIGINT, np.zeros(0, dtype=np.int64)),
    (DataType.TIMESTAMP,
     1_000_000_000_000 + np.cumsum(np.full(4096, 25_000, dtype=np.int64))),
    (DataType.DOUBLE, np.linspace(-1.0, 1.0, 333)),
    (DataType.DOUBLE, np.repeat(np.array([1.5, 2.5, 3.5]), 200)),
    (DataType.BOOLEAN, np.arange(100) % 3 == 0),
    (DataType.VARCHAR, np.array(["HGN", "DBN", "ISK"] * 100, dtype=object)),
    (DataType.VARCHAR, np.array(["solo"], dtype=object)),
    (DataType.BIGINT, np.array([np.iinfo(np.int64).min // 2,
                                np.iinfo(np.int64).max // 2], dtype=np.int64)),
])
def test_codec_roundtrip(dtype, values):
    codec_id, payload = encode_array(dtype, values)
    assert codec_id in CODEC_NAMES
    back = decode_array(dtype, codec_id, payload, len(values))
    if dtype == DataType.VARCHAR:
        assert [str(v) for v in back] == [str(v) for v in values]
    else:
        assert np.array_equal(back, values)


def test_codec_choices_match_data_shape():
    # Monotone int64 → delta family; constants → FOR/RLE; low-cardinality
    # strings → dictionary.
    monotone = np.cumsum(np.full(5000, 40, dtype=np.int64))
    assert encode_array(DataType.BIGINT, monotone)[0] == CODEC_DELTA_FOR
    constant = np.full(5000, 7, dtype=np.int64)
    assert encode_array(DataType.BIGINT, constant)[0] in (CODEC_FOR, CODEC_RLE)
    strings = np.array(["BHZ"] * 500 + ["BHE"] * 500, dtype=object)
    assert encode_array(DataType.VARCHAR, strings)[0] in (CODEC_DICT, CODEC_RLE)


def test_codec_compresses():
    times = 1_600_000_000_000_000 + \
        np.cumsum(np.full(16384, 25_000, dtype=np.int64))
    _codec, payload = encode_array(DataType.TIMESTAMP, times)
    assert len(payload) < times.nbytes / 100


def test_page_roundtrip_with_null_mask():
    valid = np.arange(1000) % 7 != 0
    col = Column(DataType.BIGINT, np.arange(1000, dtype=np.int64), valid)
    back = decode_page(encode_page(col))
    assert np.array_equal(back.values, col.values)
    assert np.array_equal(back.valid, valid)


def test_page_roundtrip_varchar_nulls():
    values = np.array(["a", "", "b", "a"] * 25, dtype=object)
    valid = np.array([True, False, True, True] * 25)
    back = decode_page(encode_page(Column(DataType.VARCHAR, values, valid)))
    assert [v for v in back.values] == [v for v in values]
    assert np.array_equal(back.valid, valid)


def test_corrupted_page_checksum_detected():
    raw = bytearray(encode_page(
        Column(DataType.BIGINT, np.arange(100, dtype=np.int64))
    ))
    raw[-1] ^= 0xFF  # flip a payload bit
    with pytest.raises(CorruptSegmentError, match="checksum"):
        decode_page(bytes(raw))


# ---------------------------------------------------------------------------
# Segment files
# ---------------------------------------------------------------------------


def _write_segment(path, rows=40000):
    writer = SegmentWriter(path)
    writer.write_column(
        "t", Column(DataType.TIMESTAMP,
                    np.cumsum(np.full(rows, 1000, dtype=np.int64))))
    writer.write_column(
        "v", Column(DataType.BIGINT, np.arange(rows, dtype=np.int64),
                    np.arange(rows) % 11 != 0))
    writer.write_column(
        "s", Column(DataType.VARCHAR,
                    np.array(["x", "y"] * (rows // 2), dtype=object)))
    writer.finish()


def test_segment_lazy_column_reads(tmp_path):
    path = tmp_path / "seg.seg"
    _write_segment(path)
    pool = BufferPool(1 << 22)
    reader = SegmentReader(path, pool)
    assert reader.row_count == 40000
    col = reader.read_column("v")
    assert np.array_equal(col.values, np.arange(40000, dtype=np.int64))
    assert col.valid is not None and not col.valid[0]
    # Only v's pages were fetched; t and s stayed on disk.
    assert pool.stats.disk_reads == reader.pages_of("v")
    assert reader.total_pages() > reader.pages_of("v")
    reader.close()


def test_segment_corruption_detected_at_read(tmp_path):
    path = tmp_path / "seg.seg"
    _write_segment(path, rows=5000)
    pool = BufferPool(1 << 22)
    reader = SegmentReader(path, pool)
    # Find v's first page offset from the directory and corrupt it on disk.
    slot = reader._directory["v"][0]
    with open(path, "r+b") as handle:
        handle.seek(slot.offset + slot.length - 1)
        byte = handle.read(1)
        handle.seek(-1, os.SEEK_CUR)
        handle.write(bytes([byte[0] ^ 0xFF]))
    reader.close()
    fresh = SegmentReader(path, BufferPool(1 << 22))
    fresh.read_column("t")  # untouched column still reads fine
    with pytest.raises(CorruptSegmentError):
        fresh.read_column("v")
    fresh.close()


def test_segment_rejects_ragged_columns(tmp_path):
    writer = SegmentWriter(tmp_path / "seg.seg")
    writer.write_column("a", Column(DataType.BIGINT,
                                    np.arange(10, dtype=np.int64)))
    with pytest.raises(StorageError, match="rows"):
        writer.write_column("b", Column(DataType.BIGINT,
                                        np.arange(9, dtype=np.int64)))
    writer.abort()


# ---------------------------------------------------------------------------
# Buffer pool
# ---------------------------------------------------------------------------


def test_bufferpool_eviction_under_budget():
    pool = BufferPool(budget_bytes=1000)
    for i in range(10):
        pool.get(("seg", i), lambda: b"x" * 300)
        assert pool.used_bytes <= 1000
    assert pool.stats.evictions > 0
    assert pool.stats.disk_reads == 10


def test_bufferpool_lru_order():
    pool = BufferPool(budget_bytes=600)
    pool.get(("seg", 0), lambda: b"a" * 250)
    pool.get(("seg", 1), lambda: b"b" * 250)
    pool.get(("seg", 0), lambda: b"!")  # touch 0 → 1 becomes LRU victim
    pool.get(("seg", 2), lambda: b"c" * 250)
    assert ("seg", 0) in pool and ("seg", 2) in pool
    assert ("seg", 1) not in pool


def test_bufferpool_pins_block_eviction():
    pool = BufferPool(budget_bytes=500)
    pool.pin(("seg", 0), lambda: b"a" * 400)
    pool.pin(("seg", 1), lambda: b"b" * 400)  # over budget, both pinned
    assert ("seg", 0) in pool and ("seg", 1) in pool
    assert pool.used_bytes > pool.budget_bytes  # temporary overcommit
    pool.unpin(("seg", 0))  # first unpinned page is trimmed immediately
    assert pool.used_bytes <= pool.budget_bytes
    assert ("seg", 1) in pool  # still pinned, still resident
    pool.unpin(("seg", 1))
    with pytest.raises(StorageError):
        pool.unpin(("seg", 1))


def test_bufferpool_clear():
    pool = BufferPool(1 << 20)
    pool.pin(("seg", 0), lambda: b"page")
    with pytest.raises(StorageError, match="pinned"):
        pool.clear()
    pool.unpin(("seg", 0))
    pool.clear()
    assert len(pool) == 0 and pool.used_bytes == 0


def test_bufferpool_hits_do_not_reread():
    pool = BufferPool(1 << 20)
    loads = []
    for _ in range(5):
        pool.get(("seg", 0), lambda: loads.append(1) or b"page")
    assert len(loads) == 1
    assert pool.stats.hits == 4


# ---------------------------------------------------------------------------
# TableStore: manifest atomicity
# ---------------------------------------------------------------------------


def _toy_database():
    db = Database()
    db.execute("CREATE TABLE t (a BIGINT, b VARCHAR, PRIMARY KEY (a))")
    db.execute("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y'), (3, 'z')")
    return db


def test_store_roundtrip_via_catalog(tmp_path):
    db = _toy_database()
    db.attach(tmp_path / "store")
    assert db.checkpoint() == ["main.t"]

    db2 = Database()
    db2.attach(tmp_path / "store")
    result = db2.query("SELECT b FROM t WHERE a >= 2 ORDER BY a")
    assert result.columns[0].to_pylist() == ["y", "z"]
    # Projection pruning: only b's pages (plus filter column a) read.
    assert db2.last_report.pages_read == 2
    assert db2.last_report.pages_skipped == 0  # 2-column table, both needed
    result = db2.query("SELECT a FROM t ORDER BY a")
    assert db2.last_report.pages_skipped == 1  # b never left disk


def test_attach_rejects_schema_mismatch(tmp_path):
    db = _toy_database()
    db.attach(tmp_path / "store")
    db.checkpoint()

    db2 = Database()
    db2.execute("CREATE TABLE t (a BIGINT, b BIGINT)")  # wrong dtype for b
    with pytest.raises(CatalogError, match="does not match"):
        db2.attach(tmp_path / "store")


def test_attach_keeps_resident_rows_and_checkpoint_overwrites(tmp_path):
    """Attaching over a loaded table: memory wins, checkpoint republishes."""
    db = _toy_database()
    db.attach(tmp_path / "store")
    db.checkpoint()

    db2 = Database()
    db2.execute("CREATE TABLE t (a BIGINT, b VARCHAR)")
    db2.execute("INSERT INTO t (a, b) VALUES (9, 'q')")
    db2.attach(tmp_path / "store")
    # The resident row is served, not the three stored ones.
    assert db2.query("SELECT a FROM t").columns[0].to_pylist() == [9]
    assert db2.checkpoint() == ["main.t"]

    db3 = Database()
    db3.attach(tmp_path / "store")
    assert db3.query("SELECT a FROM t").columns[0].to_pylist() == [9]


def test_repeat_checkpoint_skips_unchanged_tables(tmp_path):
    db = _toy_database()
    db.attach(tmp_path / "store")
    assert db.checkpoint() == ["main.t"]
    assert db.checkpoint() == []  # same version: nothing rewritten
    db.execute("INSERT INTO t (a, b) VALUES (4, 'w')")
    assert db.checkpoint() == ["main.t"]


def test_manifest_crash_before_rename_preserves_old_state(tmp_path):
    """Simulate a crash between segment write and manifest rename."""
    root = tmp_path / "store"
    db = _toy_database()
    db.attach(root)
    db.checkpoint()

    store = TableStore(root)
    old_manifest = json.load(open(store.manifest_path))

    # The "crash": a new segment generation is fully written and the new
    # manifest reaches only the temp file — never the rename.
    db.execute("INSERT INTO t (a, b) VALUES (4, 'w')")
    table = db.table("main.t")
    store.save_table("main.t", table, commit=False)
    with open(store.manifest_path + ".tmp", "w") as handle:
        json.dump({"version": 99, "torn": True}, handle)

    # A fresh open sees the *old* committed manifest, fully intact.
    recovered = TableStore(root)
    assert json.load(open(recovered.manifest_path)) == old_manifest
    db2 = Database()
    db2.attach(recovered)
    assert db2.query("SELECT count(*) FROM t").columns[0].to_pylist() == [3]


def test_orphan_segments_swept_on_commit(tmp_path):
    root = tmp_path / "store"
    db = _toy_database()
    db.attach(root)
    db.checkpoint()
    first_gen = [n for n in os.listdir(root) if n.endswith(".seg")]
    db.execute("INSERT INTO t (a, b) VALUES (4, 'w')")  # detaches backing
    db.checkpoint()
    remaining = [n for n in os.listdir(root) if n.endswith(".seg")]
    assert len(remaining) == 1
    assert remaining != first_gen


def test_dml_on_disk_backed_table_materialises(tmp_path):
    db = _toy_database()
    db.attach(tmp_path / "store")
    db.checkpoint()

    db2 = Database()
    db2.attach(tmp_path / "store")
    table = db2.table("main.t")
    assert table.disk_backing is not None
    db2.execute("UPDATE t SET b = 'q' WHERE a = 2")
    assert table.disk_backing is None  # copy-on-write detach
    assert db2.query("SELECT b FROM t WHERE a = 2").columns[0].to_pylist() \
        == ["q"]
    # PK enforcement still works after materialisation.
    from repro.errors import ConstraintError
    with pytest.raises(ConstraintError):
        db2.execute("INSERT INTO t (a, b) VALUES (1, 'dup')")


# ---------------------------------------------------------------------------
# Warm-start equivalence (the acceptance criterion)
# ---------------------------------------------------------------------------


FIG1_STYLE = (
    "SELECT station, count(*) AS n, avg(sample_value) AS mean_v "
    "FROM mseed.dataview GROUP BY station ORDER BY station"
)


def test_warm_start_equivalence(tiny_repo, tmp_path):
    from repro.seismology.warehouse import SeismicWarehouse

    ckpt = tmp_path / "ckpt"
    cold = SeismicWarehouse(tiny_repo.root, mode="lazy",
                            storage_path=ckpt)
    before = cold.query(FIG1_STYLE)
    assert cold.files_extracted_by_last_query()  # cold run extracts
    spilled = cold.checkpoint()
    assert spilled == len(cold.cache) > 0

    warm = SeismicWarehouse(tiny_repo.root, mode="lazy", storage_path=ckpt)
    assert warm.load_report.strategy.endswith("+warm")
    assert warm.cache.stats.restored == spilled
    after = warm.query(FIG1_STYLE)
    # Identical answers, zero re-extraction: every record is a cache hit.
    for left, right in zip(before.columns, after.columns):
        assert left.to_pylist() == right.to_pylist()
    assert warm.files_extracted_by_last_query() == []
    assert not any(t["op"] == "extract" for t in warm.last_trace)
    assert any(t["op"] == "cache_fetch" for t in warm.last_trace)


def test_warm_start_metadata_scans_are_lazy_io(tiny_repo, tmp_path):
    from repro.seismology.warehouse import SeismicWarehouse

    ckpt = tmp_path / "ckpt"
    cold = SeismicWarehouse(tiny_repo.root, mode="lazy", storage_path=ckpt)
    cold.query(FIG1_STYLE)
    cold.checkpoint()

    warm = SeismicWarehouse(tiny_repo.root, mode="lazy", storage_path=ckpt)
    warm.query("SELECT count(*) FROM mseed.files")
    report = warm.db.last_report
    # Counting rows needs one column; the other file-metadata pages
    # (station, channel, times, ...) never leave disk.
    assert report.pages_read >= 1
    assert report.pages_skipped > report.pages_read
    assert "DiskScan" in warm.explain("SELECT count(*) FROM mseed.files")


def test_warm_start_still_detects_staleness(tiny_repo, tmp_path, monkeypatch):
    """A file changed after checkpoint must be re-extracted, not served."""
    import shutil

    from repro.seismology.warehouse import SeismicWarehouse

    repo_copy = tmp_path / "repo"
    shutil.copytree(tiny_repo.root, repo_copy)
    ckpt = tmp_path / "ckpt"
    cold = SeismicWarehouse(repo_copy, mode="lazy", storage_path=ckpt)
    cold.query(FIG1_STYLE)
    cold.checkpoint()

    # Touch one data file with a newer mtime.
    victim = next(
        os.path.join(dirpath, name)
        for dirpath, _dirs, names in os.walk(repo_copy)
        for name in names if name.endswith(".mseed")
    )
    stat = os.stat(victim)
    os.utime(victim, ns=(stat.st_atime_ns + 10**9,
                         stat.st_mtime_ns + 10**9))

    warm = SeismicWarehouse(repo_copy, mode="lazy", storage_path=ckpt)
    warm.query(FIG1_STYLE)
    assert any(t["op"] == "refresh" for t in warm.last_trace)
    assert warm.cache.stats.stale_drops > 0


def test_warm_start_adopts_checkpoint_granularity(tiny_repo, tmp_path):
    from repro.etl.metadata import Granularity
    from repro.seismology.warehouse import SeismicWarehouse

    ckpt = tmp_path / "ckpt"
    cold = SeismicWarehouse(tiny_repo.root, mode="lazy",
                            granularity=Granularity.FILE, storage_path=ckpt)
    cold.query(FIG1_STYLE)
    cold.checkpoint()

    # Reopened with the default (RECORD): the checkpoint's granularity
    # wins, so refreshes keep a consistent seq_no scheme.
    warm = SeismicWarehouse(tiny_repo.root, mode="lazy", storage_path=ckpt)
    assert warm.pipeline.granularity is Granularity.FILE
    assert warm.load_report.strategy == "lazy[file]+warm"


def test_defer_load_opts_out_of_warm_start(tiny_repo, tmp_path):
    from repro.seismology.warehouse import SeismicWarehouse

    ckpt = tmp_path / "ckpt"
    cold = SeismicWarehouse(tiny_repo.root, mode="lazy", storage_path=ckpt)
    cold.query(FIG1_STYLE)
    cold.checkpoint()

    deferred = SeismicWarehouse(tiny_repo.root, mode="lazy",
                                storage_path=ckpt, defer_load=True)
    assert deferred.load_report is None  # constructor loaded nothing
    deferred.load()  # the contractual explicit load must not conflict
    result = deferred.query(FIG1_STYLE)
    assert result.columns[0].to_pylist() == \
        cold.query(FIG1_STYLE).columns[0].to_pylist()


def test_eager_warehouse_recheckpoints_over_existing_store(tiny_repo,
                                                           tmp_path):
    from repro.seismology.warehouse import SeismicWarehouse

    ckpt = tmp_path / "ckpt"
    first = SeismicWarehouse(tiny_repo.root, mode="eager",
                             storage_path=ckpt)
    first.checkpoint()
    # A second eager run over the same store dir loads fresh and must be
    # able to checkpoint again (resident rows win, store is rewritten).
    second = SeismicWarehouse(tiny_repo.root, mode="eager",
                              storage_path=ckpt)
    second.checkpoint()
    db = Database()
    db.attach(ckpt)
    assert db.query("SELECT count(*) FROM mseed.files").scalar() \
        == second.query("SELECT count(*) FROM mseed.files").scalar()


def test_checkpoint_of_eager_warehouse(tiny_repo, tmp_path):
    from repro.seismology.warehouse import SeismicWarehouse

    eager = SeismicWarehouse(tiny_repo.root, mode="eager")
    expected = eager.query(FIG1_STYLE)
    eager.checkpoint(tmp_path / "ckpt")

    db = Database()
    db.attach(tmp_path / "ckpt")
    got = db.query(FIG1_STYLE.replace("mseed.dataview", "mseed.data d, "
                                      "mseed.files f WHERE "
                                      "d.file_location = f.file_location"))
    # Same stations and counts straight from compressed segments.
    assert got.columns[0].to_pylist() == expected.columns[0].to_pylist()
    assert got.columns[1].to_pylist() == expected.columns[1].to_pylist()


# ---------------------------------------------------------------------------
# Cache snapshot corner cases
# ---------------------------------------------------------------------------


def test_cache_snapshot_roundtrip(tmp_path):
    from repro.etl.cache import ExtractionCache

    cache = ExtractionCache()
    cache.put("f1", 1, 100, {
        "sample_time": np.cumsum(np.full(500, 1000, dtype=np.int64)),
        "sample_value": np.arange(500, dtype=np.int64),
    }, cost_estimate=2.5)
    cache.put("f2", 7, 200, {"sample_value": np.ones(10, dtype=np.int64)})
    store = TableStore(tmp_path / "store")
    assert cache.spill(store) == 2

    fresh = ExtractionCache()
    assert fresh.restore(store) == 2
    got = fresh.get("f1", 1, ["sample_time", "sample_value"])
    assert got is not None
    assert np.array_equal(got["sample_value"], np.arange(500))
    # mtime survives, so staleness detection still works after restore.
    assert fresh.validate_file("f1", 100)
    assert not fresh.validate_file("f1", 999)


def test_cache_snapshot_respects_budget(tmp_path):
    from repro.etl.cache import ExtractionCache

    big = ExtractionCache()
    for seq in range(10):
        big.put("f", seq, 1,
                {"sample_value": np.arange(1000, dtype=np.int64)})
    store = TableStore(tmp_path / "store")
    big.spill(store)

    entry_bytes = 8000
    small = ExtractionCache(budget_bytes=entry_bytes * 3 + 8)
    small.restore(store)
    assert len(small) <= 3
    assert small.used_bytes <= small.budget_bytes


def test_empty_cache_spill_roundtrip(tmp_path):
    from repro.etl.cache import ExtractionCache

    store = TableStore(tmp_path / "store")
    assert ExtractionCache().spill(store) == 0
    assert not store.has_cache_snapshot()
    assert ExtractionCache().restore(store) == 0


# ---------------------------------------------------------------------------
# Plan cache × storage attachment (catalog schema epoch)
# ---------------------------------------------------------------------------


def _physical_node_types(db):
    """Operator class names of the last physical plan, top-down."""
    names = []
    stack = [db.last_plan_physical]
    while stack:
        node = stack.pop()
        names.append(type(node).__name__)
        stack.extend(node.children())
    return names


def test_attach_mid_session_recompiles_cached_plans(tmp_path):
    """A plan compiled before attach() must not keep serving in-memory
    scans once a disk-backed PDiskScan becomes available: attach bumps
    the catalog schema epoch, making every cached plan unreachable."""
    db = _toy_database()
    db.attach(tmp_path / "store")
    db.checkpoint()

    db2 = Database()
    db2.execute("CREATE TABLE t (a BIGINT, b VARCHAR, PRIMARY KEY (a))")
    sql = "SELECT a FROM t ORDER BY a"
    assert db2.query(sql).row_count == 0  # compiled over the empty table
    _res, report, _trace = db2.query_with_report(sql)
    assert report.plan_cache_hit
    assert "PTableScan" in _physical_node_types(db2)

    db2.attach(tmp_path / "store")  # mid-session: t becomes disk-backed
    result, report, _trace = db2.query_with_report(sql)
    assert not report.plan_cache_hit  # recompiled, not served stale
    assert "PDiskScan" in _physical_node_types(db2)
    assert result.columns[0].to_pylist() == [1, 2, 3]
    assert report.pages_read > 0


def test_dml_detach_recompiles_cached_disk_plans(tmp_path):
    """The reverse direction: DML materialises a disk-backed table (the
    backing detaches), and the cached PDiskScan plan must be recompiled
    rather than keep pointing at the dropped backing."""
    db = _toy_database()
    db.attach(tmp_path / "store")
    db.checkpoint()

    db2 = Database()
    db2.attach(tmp_path / "store")
    sql = "SELECT a FROM t ORDER BY a"
    assert db2.query(sql).columns[0].to_pylist() == [1, 2, 3]
    _res, report, _trace = db2.query_with_report(sql)
    assert report.plan_cache_hit
    assert "PDiskScan" in _physical_node_types(db2)

    db2.execute("INSERT INTO t (a, b) VALUES (4, 'w')")
    result, report, _trace = db2.query_with_report(sql)
    assert not report.plan_cache_hit  # _invalidate_for dropped the plan
    assert "PDiskScan" not in _physical_node_types(db2)
    assert result.columns[0].to_pylist() == [1, 2, 3, 4]


def test_checkpoint_keeps_resident_plans_valid(tmp_path):
    """checkpoint() writes segments but leaves tables resident: cached
    plans stay correct (and stay cached — no spurious recompile)."""
    db = _toy_database()
    db.attach(tmp_path / "store")
    sql = "SELECT a FROM t ORDER BY a"
    before = db.query(sql).columns[0].to_pylist()
    db.checkpoint()
    result, report, _trace = db.query_with_report(sql)
    assert report.plan_cache_hit
    assert result.columns[0].to_pylist() == before
    assert "PTableScan" in _physical_node_types(db)


# ---------------------------------------------------------------------------
# Promoted segments in the store manifest
# ---------------------------------------------------------------------------


def _promoted_entries(n=3, rows=100):
    return [
        (f"f{i}.seed", i, 1000 + i,
         {"sample_value": np.arange(rows, dtype=np.int64) + i,
          "sample_time": np.arange(rows, dtype=np.int64) * 25_000})
        for i in range(n)
    ]


def test_promoted_segment_roundtrip_across_reopen(tmp_path):
    store = TableStore(tmp_path / "store")
    segment, directory = store.save_promoted_segment(_promoted_entries())
    assert len(directory) == 3
    assert os.path.exists(os.path.join(store.root, segment))

    reopened = TableStore(tmp_path / "store")
    assert segment in reopened.promoted_segments()
    from repro.storage.promoted import PromotedStore

    promoted = PromotedStore(reopened)
    assert len(promoted) == 3
    served = promoted.fetch("f1.seed", 1, ["sample_value"], 1001)
    assert served is not None
    columns, pages_read = served
    assert np.array_equal(columns["sample_value"],
                          np.arange(100, dtype=np.int64) + 1)
    assert pages_read > 0


def test_promoted_fetch_misses(tmp_path):
    from repro.storage.promoted import PromotedStore

    store = TableStore(tmp_path / "store")
    store.save_promoted_segment(_promoted_entries(1))
    promoted = PromotedStore(store)
    # Unknown unit / uncovered column / stale mtime all miss.
    assert promoted.fetch("nope.seed", 0, ["sample_value"], 1000) is None
    assert promoted.fetch("f0.seed", 0, ["other_col"], 1000) is None
    assert promoted.fetch("f0.seed", 0, ["sample_value"], 9999) is None
    assert ("f0.seed", 0) not in promoted  # the stale unit was dropped
    assert promoted.stats.stale_drops == 1


def test_promoted_segments_survive_unrelated_commits(tmp_path):
    """The orphan sweep must treat promoted segments as live."""
    db = _toy_database()
    store = db.attach(tmp_path / "store")
    segment, _ = store.save_promoted_segment(_promoted_entries(2))
    db.checkpoint()  # commits + sweeps orphans
    assert os.path.exists(os.path.join(store.root, segment))

    store.drop_promoted_segment(segment)  # demotion sweeps the file
    assert not os.path.exists(os.path.join(store.root, segment))
    assert segment not in TableStore(tmp_path / "store").promoted_segments()


def test_promoted_drop_segment_clears_index(tmp_path):
    from repro.storage.promoted import PromotedStore

    store = TableStore(tmp_path / "store")
    promoted = PromotedStore(store)
    segment = promoted.promote_batch(_promoted_entries(2))
    assert len(promoted) == 2
    assert promoted.drop_segment(segment) == 2
    assert len(promoted) == 0
    assert promoted.fetch("f0.seed", 0, ["sample_value"], 1000) is None


def test_promote_batch_rejects_empty_and_repromotes(tmp_path):
    from repro.storage.promoted import PromotedStore

    store = TableStore(tmp_path / "store")
    promoted = PromotedStore(store)
    assert promoted.promote_batch([]) is None
    first = promoted.promote_batch(_promoted_entries(1))
    second = promoted.promote_batch(_promoted_entries(1))  # re-promotion
    assert first != second
    assert len(promoted) == 1  # the new copy won the index
    assert promoted.unit("f0.seed", 0).segment == second


# ---------------------------------------------------------------------------
# Buffer pool: pinned-overcommit stress (ISSUE-5 satellite)
# ---------------------------------------------------------------------------


def test_bufferpool_pinned_overcommit_randomized_stress():
    """Randomized multi-thread pin/unpin where pinned pages alone exceed
    the budget: no deadlock, pinned pages are never evicted (so never
    double-evicted), and accounting returns to <= budget once pins drop.
    """
    import threading

    pool = BufferPool(budget_bytes=4096)
    n_keys = 40
    sizes = {i: 256 + (i * 37) % 512 for i in range(n_keys)}
    errors: list[BaseException] = []

    def worker(worker_id: int) -> None:
        rng = np.random.default_rng(worker_id)
        held: list[tuple[str, int]] = []
        try:
            for _ in range(300):
                key = ("seg", int(rng.integers(n_keys)))
                page = pool.pin(key, lambda k=key: b"x" * sizes[k[1]])
                held.append(key)
                if len(page) != sizes[key[1]]:
                    raise AssertionError("wrong page content served")
                # A page we hold pinned must be resident right now —
                # eviction (single or double) of pinned pages is a bug.
                if key not in pool or pool.pin_count(key) <= 0:
                    raise AssertionError("pinned page evicted")
                while len(held) > int(rng.integers(1, 9)):
                    pool.unpin(held.pop(int(rng.integers(len(held)))))
        except BaseException as exc:  # surfaced to the main thread
            errors.append(exc)
        finally:
            for key in held:
                pool.unpin(key)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not any(t.is_alive() for t in threads), "stress test deadlocked"
    assert not errors, errors

    # Every pin dropped: the transient overcommit must have trimmed back,
    # and the byte counter must agree exactly with the resident pages
    # (double-eviction would corrupt it).
    assert not pool._pins
    assert pool.used_bytes <= pool.budget_bytes
    assert pool.used_bytes == sum(len(p) for p in pool._pages.values())
