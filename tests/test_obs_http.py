"""The HTTP observability endpoint + observer lifecycle regressions.

``serve(http_port=0)`` binds an ephemeral loopback port exposing
``/metrics`` (strict-parseable Prometheus text), ``/healthz`` and
``/sys/<table>``; ``close()`` shuts it down without leaking the socket
or the serving thread.  The lifecycle half guards against observer
leaks: creating and closing many warehouses/services must not
accumulate registry collectors or snapshotter threads.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.errors import MetricsError
from repro.obs.export import parse_exposition
from repro.obs.http import ObservabilityServer
from repro.seismology.warehouse import SeismicWarehouse

COUNT_FILES = "SELECT COUNT(*) AS n FROM mseed.files"


def _get(url: str):
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.status, dict(resp.headers), resp.read()


@pytest.fixture()
def served(demo_repo):
    wh = SeismicWarehouse(demo_repo.root, mode="lazy")
    svc = wh.serve(max_workers=2, http_port=0)
    try:
        yield wh, svc
    finally:
        svc.close()
        wh.close()


def test_http_port_zero_binds_ephemeral_loopback(served):
    _wh, svc = served
    assert svc.http_port not in (None, 0)
    assert svc.http.url == f"http://127.0.0.1:{svc.http_port}"


def test_metrics_route_serves_strict_exposition(served, demo_repo):
    _wh, svc = served
    svc.session("alice").submit(COUNT_FILES).result()
    status, headers, body = _get(f"{svc.http.url}/metrics")
    assert status == 200
    assert headers["Content-Type"].startswith("text/plain")
    assert "version=0.0.4" in headers["Content-Type"]
    samples = parse_exposition(body.decode("utf-8"))
    names = {name for name, _labels, _value in samples}
    assert "repro_service_submitted_total" in names
    assert "repro_plan_cache_entries" in names


def test_healthz_reports_ok_then_degraded(served):
    _wh, svc = served
    status, _headers, body = _get(f"{svc.http.url}/healthz")
    payload = json.loads(body)
    assert status == 200 and payload["status"] == "ok"
    assert payload["checks"]["workers_alive"] == 2
    assert "journal_entries" in payload["checks"]
    # A closed service reports degraded (the endpoint itself is gone by
    # then, so assert on the health() dict directly).
    svc.close()
    health = svc.health()
    assert health["status"] == "degraded"
    assert "closed" in health["degraded"]


def test_sys_routes_mirror_sql_scans(served):
    wh, svc = served
    svc.session("alice").submit(COUNT_FILES).result()
    status, _headers, body = _get(f"{svc.http.url}/sys/queries")
    assert status == 200
    payload = json.loads(body)
    assert payload["table"] == "sys.queries"
    sessions = {row["session"] for row in payload["rows"]}
    assert "alice" in sessions
    # Same provider the SQL path scans.
    sql_sessions = {row[0] for row in wh.query(
        "SELECT session FROM sys.queries").rows()}
    assert "alice" in sql_sessions


def test_unknown_routes_and_tables_404(served):
    _wh, svc = served
    with pytest.raises(urllib.error.HTTPError) as err:
        _get(f"{svc.http.url}/sys/nope")
    assert err.value.code == 404
    assert "system_tables" in json.loads(err.value.read())
    with pytest.raises(urllib.error.HTTPError) as err:
        _get(f"{svc.http.url}/shell")
    assert err.value.code == 404


def test_index_route_lists_surface(served):
    _wh, svc = served
    _status, _headers, body = _get(f"{svc.http.url}/")
    payload = json.loads(body)
    assert "/metrics" in payload["routes"]
    assert "queries" in payload["system_tables"]


def test_close_releases_port_and_thread(demo_repo):
    wh = SeismicWarehouse(demo_repo.root, mode="lazy")
    svc = wh.serve(max_workers=1, http_port=0)
    url = svc.http.url
    port = svc.http_port
    server = svc.http
    svc.close()
    wh.close()
    assert svc.http_port is None and server.port is None
    with pytest.raises(urllib.error.URLError):
        _get(f"{url}/healthz")
    # Double close is a no-op; a fresh service can rebind the same port.
    server.stop()
    svc2 = wh.serve(max_workers=1, http_port=port)
    try:
        assert svc2.http_port == port
    finally:
        svc2.close()


def test_http_port_validation(demo_repo):
    wh = SeismicWarehouse(demo_repo.root, mode="lazy")
    try:
        with pytest.raises(Exception):
            wh.serve(http_port=70000)
    finally:
        wh.close()


def test_route_errors_do_not_kill_the_server(served, monkeypatch):
    _wh, svc = served
    monkeypatch.setattr(svc, "health",
                        lambda: (_ for _ in ()).throw(RuntimeError("boom")))
    with pytest.raises(urllib.error.HTTPError) as err:
        _get(f"{svc.http.url}/healthz")
    assert err.value.code == 500
    status, _headers, _body = _get(f"{svc.http.url}/metrics")
    assert status == 200


# ---------------------------------------------------------------------------
# observer lifecycle: no leaked collectors / threads
# ---------------------------------------------------------------------------


def test_fifty_lifecycles_leak_no_collectors_or_threads(demo_repo):
    baseline_threads = threading.active_count()
    registries = []
    for i in range(50):
        wh = SeismicWarehouse(demo_repo.root, mode="lazy")
        svc = wh.serve(max_workers=1, metrics_interval_s=0.05,
                       http_port=0 if i % 5 == 0 else None)
        svc.session("s").submit(COUNT_FILES).result()
        svc.close()
        wh.close()
        registries.append(wh.metrics_registry)
        assert wh.metrics_registry.collector_count() == 0, f"cycle {i}"
    for _ in range(100):
        if threading.active_count() <= baseline_threads:
            break
        threading.Event().wait(0.05)
    assert threading.active_count() <= baseline_threads, (
        f"leaked threads: {[t.name for t in threading.enumerate()]}"
    )


def test_standalone_server_start_stop_idempotent(demo_repo):
    wh = SeismicWarehouse(demo_repo.root, mode="lazy")
    svc = wh.serve(max_workers=1)
    server = ObservabilityServer(svc, port=0)
    try:
        assert server.start() is server.start()
        port = server.port
        assert _get(f"http://127.0.0.1:{port}/healthz")[0] == 200
    finally:
        server.stop()
        server.stop()
        svc.close()
        wh.close()
    assert server.port is None
