"""Adaptive lazy→eager promotion: heat-fed materialization + demotion."""

import os
import time

import numpy as np
import pytest

from repro.errors import ETLError, ServiceError
from repro.mseed.files import write_mseed_file
from repro.seismology.warehouse import SeismicWarehouse
from repro.service.promoter import Promoter, PromoterConfig

HOT_Q = ("SELECT MIN(D.sample_value), MAX(D.sample_value), COUNT(*) "
         "FROM mseed.dataview WHERE F.station = 'ISK' "
         "AND F.channel = 'BHZ'")
OTHER_Q = ("SELECT MIN(D.sample_value), COUNT(*) FROM mseed.dataview "
           "WHERE F.station = 'HGN' AND F.channel = 'BHE'")


def _rewrite_file(entry, offset=1000):
    samples = (np.arange(entry.n_samples, dtype=np.int32) % 100) + offset
    write_mseed_file(
        entry.path,
        network=entry.network, station=entry.station,
        location=entry.location, channel=entry.channel,
        start_time_us=entry.start_time_us, sample_rate=entry.sample_rate,
        samples=samples,
    )
    stat = os.stat(entry.path)
    os.utime(entry.path, ns=(stat.st_atime_ns, stat.st_mtime_ns + 10**9))


@pytest.fixture()
def stored_wh(demo_repo, tmp_path):
    """Lazy warehouse with storage attached and the recycler off (the
    recycler would serve exact repeats before promotion could show)."""
    return SeismicWarehouse(demo_repo.root, mode="lazy",
                            storage_path=tmp_path / "store",
                            enable_recycler=False)


# -- heat feeding from the query path -----------------------------------------


def test_queries_feed_the_heat_tracker(lazy_wh):
    lazy_wh.query(HOT_Q)
    assert len(lazy_wh.heat) > 0
    units = {(u, s): unit for u, s, _sc, unit in lazy_wh.heat.snapshot()}
    assert all(unit.extractions == 1 for unit in units.values())
    lazy_wh.query(HOT_Q)  # now served from the extraction cache
    units = {(u, s): unit for u, s, _sc, unit in lazy_wh.heat.snapshot()}
    assert any(unit.cache_hits >= 1 for unit in units.values())
    assert all("sample_value" in unit.columns for unit in units.values())


def test_heat_scores_rank_hot_over_cold(demo_repo):
    # Recycler off: with it on, exact repeats are answered from recycled
    # intermediates before the lazy fetch (and its heat feed) ever runs.
    wh = SeismicWarehouse(demo_repo.root, mode="lazy",
                          enable_recycler=False)
    for _ in range(3):
        wh.query(HOT_Q)
    wh.query(OTHER_Q)
    hottest = wh.heat.hottest(4, min_score=2.0)
    assert hottest, "repeatedly queried units should exceed the threshold"
    assert all("ISK" in uri for uri, _s, _sc, _u in hottest)


# -- the promote() API ---------------------------------------------------------


def test_promote_requires_lazy_mode_and_storage(demo_repo, tmp_path):
    eager = SeismicWarehouse(demo_repo.root, mode="eager")
    with pytest.raises(ETLError, match="lazy mode"):
        eager.promote()
    lazy = SeismicWarehouse(demo_repo.root, mode="lazy")
    with pytest.raises(ETLError, match="storage"):
        lazy.promote()


def test_promotion_serves_subsequent_queries_eagerly(stored_wh):
    before = stored_wh.query(HOT_Q).rows()
    report = stored_wh.promote(budget_bytes=64 * 1024 * 1024, min_score=0.0)
    assert report.promoted_units > 0
    assert len(stored_wh.promoted) == report.promoted_units

    after = stored_wh.query(HOT_Q).rows()
    assert after == before
    qr = stored_wh.db.last_report
    assert qr.rows_served_eager > 0
    assert qr.promotions == report.promoted_units
    assert qr.rows_extracted_here == 0
    assert qr.pages_read > 0  # promoted reads are disk-page I/O


def test_promotion_reuses_extraction_cache_entries(stored_wh):
    stored_wh.query(HOT_Q)  # default budget: everything stays cached
    report = stored_wh.promote(min_score=0.0)
    assert report.from_cache_units == report.promoted_units
    assert report.extracted_units == 0


def test_promoter_extracts_in_background_when_cache_cold(demo_repo,
                                                         tmp_path):
    wh = SeismicWarehouse(demo_repo.root, mode="lazy",
                          storage_path=tmp_path / "store",
                          cache_budget_bytes=64 * 1024,  # thrashes
                          enable_recycler=False)
    wh.query(HOT_Q)
    report = wh.promote(min_score=0.0)
    assert report.extracted_units > 0
    wh.query(HOT_Q)
    assert wh.db.last_report.rows_served_eager > 0


def test_repromotion_widens_column_set_when_demand_grows(stored_wh):
    """A promoted unit whose workload later needs more columns must be
    re-promoted with the union set, not excluded forever."""
    stored_wh.query(HOT_Q)              # touches sample_value only
    stored_wh.promote(min_score=0.0)
    unit = next(iter(stored_wh.promoted.unit_keys()))
    assert set(stored_wh.promoted.unit(*unit).columns) == {"sample_value"}

    time_q = ("SELECT MIN(D.sample_time), COUNT(*) FROM mseed.dataview "
              "WHERE F.station = 'ISK' AND F.channel = 'BHZ'")
    stored_wh.query(time_q)             # widened demand: sample_time too
    report = stored_wh.promote(min_score=0.0)
    assert report.promoted_units > 0    # not excluded as already-promoted
    assert set(stored_wh.promoted.unit(*unit).columns) == \
        {"sample_value", "sample_time"}
    stored_wh.query(time_q)
    assert stored_wh.db.last_report.rows_served_eager > 0


def test_promote_budget_zero_rejected(stored_wh):
    stored_wh.query(HOT_Q)
    with pytest.raises(ETLError, match="budget_bytes"):
        stored_wh.promote(budget_bytes=0)


def test_second_cycle_promotes_nothing_new(stored_wh):
    stored_wh.query(HOT_Q)
    first = stored_wh.promote(min_score=0.0)
    assert first.promoted_units > 0
    second = stored_wh.promote(min_score=0.0)
    assert second.promoted_units == 0
    assert second.candidates == 0  # already-promoted units are excluded


def test_min_score_threshold_skips_cold_units(stored_wh):
    stored_wh.query(HOT_Q)  # touched once: score ~1
    report = stored_wh.promote(min_score=1.5)
    assert report.promoted_units == 0
    for _ in range(2):
        stored_wh.query(HOT_Q)
    report = stored_wh.promote(min_score=1.5)
    assert report.promoted_units > 0


def test_explain_shows_promotion_state(stored_wh):
    assert "promoted_units" not in stored_wh.explain(HOT_Q)
    stored_wh.query(HOT_Q)
    stored_wh.promote(min_score=0.0)
    plan = stored_wh.explain(HOT_Q)
    assert f"promoted_units={len(stored_wh.promoted)}" in plan


def test_report_fields_through_cursor(stored_wh):
    stored_wh.query(HOT_Q)
    stored_wh.promote(min_score=0.0)
    cur = stored_wh.connect().cursor()
    cur.execute(HOT_Q)
    cur.fetchall()
    assert cur.report.rows_served_eager > 0
    assert cur.report.promotions > 0


# -- demotion -------------------------------------------------------------------


def test_demotion_reclaims_cold_segments(stored_wh):
    stored_wh.query(HOT_Q)
    stored_wh.query(OTHER_Q)
    report = stored_wh.promote(budget_bytes=64 * 1024 * 1024, min_score=0.0)
    assert report.promoted_units > 0
    assert stored_wh.promoted.disk_bytes() > 0

    # A follow-up cycle with a 1-byte budget demotes everything.
    squeezed = stored_wh.promote(budget_bytes=1)
    assert squeezed.demoted_units > 0
    assert len(stored_wh.promoted) == 0
    assert stored_wh.promoted.disk_bytes() == 0

    # Queries still answer correctly, back on the lazy path.
    result = stored_wh.query(HOT_Q)
    assert result.row_count == 1
    assert stored_wh.db.last_report.rows_served_eager == 0


def test_demotion_prefers_the_coldest_segment(stored_wh):
    for _ in range(4):
        stored_wh.query(HOT_Q)      # hot
    stored_wh.query(OTHER_Q)        # cold
    stored_wh.promote(min_score=0.0)             # both in (separate per-file units)
    hot_keys = {key for key in stored_wh.promoted.unit_keys()
                if "ISK" in key[0]}
    assert hot_keys

    # Shrink to just below the total: the cold segment goes first.
    total = stored_wh.promoted.disk_bytes()
    stored_wh.promote(budget_bytes=total - 1)
    remaining = stored_wh.promoted.unit_keys()
    if remaining:  # demotion is segment-grained; hot units must survive
        assert hot_keys <= remaining


# -- staleness ------------------------------------------------------------------


def test_stale_file_invalidates_promoted_units(mutable_repo):
    root = mutable_repo.root
    wh = SeismicWarehouse(root, mode="lazy",
                          storage_path=os.path.join(root, "..", "store"),
                          enable_recycler=False)
    q = ("SELECT MAX(D.sample_value) FROM mseed.dataview "
         "WHERE F.station = 'HGN' AND F.channel = 'BHZ'")
    before = wh.query(q).scalar()
    wh.promote(min_score=0.0)
    assert wh.query(q).scalar() == before
    assert wh.db.last_report.rows_served_eager > 0
    promoted_before = len(wh.promoted)

    for entry in mutable_repo.entries:
        if entry.station == "HGN" and entry.channel == "BHZ":
            _rewrite_file(entry, offset=70_000)
    after = wh.query(q).scalar()
    assert after >= 70_000
    report = wh.db.last_report
    assert report.rows_served_eager == 0  # stale units refused to serve
    assert len(wh.promoted) < promoted_before
    # The next cycle garbage-collects the emptied segments.
    wh.promote(min_score=0.0)
    assert wh.query(q).scalar() == after


def test_promoter_observing_staleness_still_triggers_refresh(mutable_repo,
                                                             tmp_path):
    """validate_file is a consuming check: when the *promoter* is the
    first to observe a rewrite, it must run the full stale reaction
    (metadata refresh included) — otherwise the next query extracts
    against the stale record index and fails on vanished records."""
    wh = SeismicWarehouse(mutable_repo.root, mode="lazy",
                          storage_path=tmp_path / "store",
                          enable_recycler=False)
    q = ("SELECT MAX(D.sample_value), COUNT(*) FROM mseed.dataview "
         "WHERE F.station = 'HGN' AND F.channel = 'BHZ'")
    wh.query(q)
    wh.promote(min_score=0.0)
    # Widened demand (sample_time) makes the units candidates again, so
    # the next cycle will actually gather — and observe — the files.
    wh.query("SELECT MIN(D.sample_time) FROM mseed.dataview "
             "WHERE F.station = 'HGN' AND F.channel = 'BHZ'")

    # Rewrite with FEWER records: stale seq_nos no longer exist on disk.
    for entry in mutable_repo.entries:
        if entry.station == "HGN" and entry.channel == "BHZ":
            samples = (np.arange(entry.n_samples // 4,
                                 dtype=np.int32) % 50) + 80_000
            write_mseed_file(
                entry.path,
                network=entry.network, station=entry.station,
                location=entry.location, channel=entry.channel,
                start_time_us=entry.start_time_us,
                sample_rate=entry.sample_rate, samples=samples,
            )
            stat = os.stat(entry.path)
            os.utime(entry.path,
                     ns=(stat.st_atime_ns, stat.st_mtime_ns + 10**9))

    # The promoter sees the staleness first and consumes the signal ...
    report = wh.promote(min_score=0.0)
    assert report.skipped_files > 0
    # ... so it must also have refreshed the metadata: the next query
    # works against the new layout and sees the new data.
    result = wh.query(q)
    assert result.rows()[0][0] >= 80_000
    assert wh.db.last_report.rows_served_eager == 0  # old units are gone


# -- persistence (checkpoint → warm start) --------------------------------------


def test_promotion_survives_warm_start_with_zero_reextraction(
        demo_repo, tmp_path):
    store = tmp_path / "store"
    wh = SeismicWarehouse(demo_repo.root, mode="lazy", storage_path=store,
                          cache_budget_bytes=64 * 1024,
                          enable_recycler=False)
    baseline = wh.query(HOT_Q).rows()
    wh.query(HOT_Q)
    promoted = wh.promote(min_score=0.0)
    assert promoted.promoted_units > 0
    heat_units = len(wh.heat)
    wh.checkpoint()

    warm = SeismicWarehouse(demo_repo.root, mode="lazy", storage_path=store,
                            cache_budget_bytes=64 * 1024,
                            enable_recycler=False)
    assert len(warm.promoted) == promoted.promoted_units
    assert len(warm.heat) == heat_units  # tracker state restored
    assert warm.query(HOT_Q).rows() == baseline
    report = warm.db.last_report
    assert report.rows_extracted_here == 0
    assert report.rows_served_eager > 0


def test_rewrite_across_restart_of_fully_promoted_file(mutable_repo,
                                                       tmp_path):
    """Fully-promoted files spill no cache entries, so after a warm
    start the promoted store must carry the staleness sentinel: a file
    rewritten with a different record layout while the process was down
    still triggers the metadata refresh (not an ExtractionError against
    the stale index)."""
    store = tmp_path / "store"
    wh = SeismicWarehouse(mutable_repo.root, mode="lazy",
                          storage_path=store, enable_recycler=False)
    q = ("SELECT MAX(D.sample_value), COUNT(*) FROM mseed.dataview "
         "WHERE F.station = 'HGN' AND F.channel = 'BHZ'")
    wh.query(q)
    wh.promote(min_score=0.0)
    wh.checkpoint()

    # Process "down": rewrite the hot files with FEWER records.
    for entry in mutable_repo.entries:
        if entry.station == "HGN" and entry.channel == "BHZ":
            samples = (np.arange(entry.n_samples // 4,
                                 dtype=np.int32) % 50) + 60_000
            write_mseed_file(
                entry.path,
                network=entry.network, station=entry.station,
                location=entry.location, channel=entry.channel,
                start_time_us=entry.start_time_us,
                sample_rate=entry.sample_rate, samples=samples,
            )
            stat = os.stat(entry.path)
            os.utime(entry.path,
                     ns=(stat.st_atime_ns, stat.st_mtime_ns + 10**9))

    warm = SeismicWarehouse(mutable_repo.root, mode="lazy",
                            storage_path=store, enable_recycler=False)
    result = warm.query(q)  # must refresh metadata, not crash
    assert result.rows()[0][0] >= 60_000
    assert warm.db.last_report.rows_served_eager == 0


# -- the background promoter (service ownership) --------------------------------


def test_service_background_promoter(stored_wh):
    with stored_wh.serve(max_workers=2, promote=True,
                         promote_interval_s=0.05,
                         promote_min_score=1.5) as svc:
        session = svc.session("hot-client")
        for _ in range(4):
            session.query(HOT_Q)
        svc.promoter.kick()
        deadline = 100
        while len(stored_wh.promoted) == 0 and deadline:
            svc.promoter.kick()
            time.sleep(0.02)
            deadline -= 1
        assert len(stored_wh.promoted) > 0
        outcome = session.query(HOT_Q)
        assert outcome.report.rows_served_eager > 0
        assert svc.promoter.errors == 0
    # close() stopped the thread
    assert not svc.promoter._thread.is_alive()


def test_service_promote_requires_storage(lazy_wh):
    with pytest.raises(ServiceError, match="storage"):
        lazy_wh.serve(promote=True)


def test_service_promote_requires_lazy_mode(eager_wh):
    with pytest.raises(ServiceError, match="lazy"):
        eager_wh.serve(promote=True)


def test_promote_before_load_raises_cleanly(demo_repo, tmp_path):
    wh = SeismicWarehouse(demo_repo.root, mode="lazy",
                          storage_path=tmp_path / "s", defer_load=True)
    with pytest.raises(ETLError, match="load"):
        wh.promote()


def test_promoter_config_validation(stored_wh):
    with pytest.raises(ETLError, match="budget_bytes"):
        PromoterConfig(budget_bytes=0)
    with pytest.raises(ETLError, match="max_units_per_cycle"):
        PromoterConfig(max_units_per_cycle=0)
    with pytest.raises(ETLError, match="storage"):
        Promoter(stored_wh.pipeline.binding, stored_wh.heat, None)
