"""EXPLAIN ANALYZE and per-query span tracing.

Pins the ISSUE acceptance criterion directly: per-operator actual times
must sum to the report's ``execute_s`` within 10% (plus a small absolute
floor for sub-millisecond queries) across the analytical suite.
"""

from __future__ import annotations

import json

import pytest

from repro.db.sql import ast
from repro.db.sql.parser import parse_statement
from repro.errors import SQLError
from repro.seismology.queries import analytical_suite
from repro.seismology.warehouse import SeismicWarehouse


@pytest.fixture()
def traced_wh(demo_repo):
    return SeismicWarehouse(demo_repo.root, mode="lazy", trace_spans=True)


# ---------------------------------------------------------------------------
# parsing
# ---------------------------------------------------------------------------


def test_parser_analyze_flag():
    plain = parse_statement("EXPLAIN SELECT a FROM t")
    analyzed = parse_statement("EXPLAIN ANALYZE SELECT a FROM t")
    assert isinstance(plain, ast.ExplainStmt) and not plain.analyze
    assert isinstance(analyzed, ast.ExplainStmt) and analyzed.analyze


def test_explain_analyze_requires_select(lazy_wh):
    with pytest.raises(SQLError):
        lazy_wh.explain_analyze("DELETE FROM mseed.files")


# ---------------------------------------------------------------------------
# rendered output
# ---------------------------------------------------------------------------


def test_warehouse_explain_analyze_renders_actuals(lazy_wh):
    text = lazy_wh.explain_analyze(
        "SELECT F.station, COUNT(*) AS n FROM mseed.dataview "
        "WHERE F.network = 'NL' GROUP BY F.station"
    )
    assert "== logical plan (optimised) ==" in text
    assert "== executed plan (actual) ==" in text
    assert "== execution summary ==" in text
    assert "actual: time=" in text
    assert "rows_out=" in text


def test_explain_analyze_params(lazy_wh):
    text = lazy_wh.explain_analyze(
        "SELECT COUNT(*) AS n FROM mseed.files WHERE network = ?", ["NL"]
    )
    assert "actual: time=" in text


def test_explain_analyze_sql_statement(lazy_wh):
    result = lazy_wh.db.execute(
        "EXPLAIN ANALYZE SELECT COUNT(*) AS n FROM mseed.records"
    )
    (row,) = result.rows()
    assert "== executed plan (actual) ==" in row[0]


def test_plain_explain_still_does_not_execute(lazy_wh):
    before = lazy_wh.db.last_report
    result = lazy_wh.db.execute(
        "EXPLAIN SELECT COUNT(*) AS n FROM mseed.records"
    )
    (row,) = result.rows()
    assert "actual:" not in row[0]
    # Plain EXPLAIN only compiles: the last executed report is untouched.
    assert lazy_wh.db.last_report is before


def test_explain_analyze_through_cursor(lazy_wh):
    with lazy_wh.connect() as conn:
        cur = conn.cursor().execute(
            "EXPLAIN ANALYZE SELECT COUNT(*) AS n FROM mseed.files"
        )
        (row,) = cur.fetchall()
    assert "execution summary" in row[0]


# ---------------------------------------------------------------------------
# acceptance: operator time attribution
# ---------------------------------------------------------------------------


def _operator_total_s(spans: dict) -> float:
    execute = next(s for s in spans["children"] if s["name"] == "execute")
    return sum(child["elapsed_s"] for child in execute["children"]
               if not child["name"].startswith("trace:"))


@pytest.mark.parametrize("run", ["cold", "warm"])
def test_operator_times_sum_to_execute_within_10pct(demo_repo, run):
    wh = SeismicWarehouse(demo_repo.root, mode="lazy")
    for spec in analytical_suite():
        if run == "warm":
            wh.query(spec.sql)  # populate the extraction cache first
        wh.explain_analyze(spec.sql)
        report = wh.db.last_report
        total = _operator_total_s(report.spans)
        slack = max(0.10 * report.execute_s, 0.002)
        assert abs(total - report.execute_s) <= slack, (
            f"{spec.qid}: operators {total:.6f}s vs "
            f"execute {report.execute_s:.6f}s"
        )


# ---------------------------------------------------------------------------
# span trees
# ---------------------------------------------------------------------------


def test_trace_spans_materialized(traced_wh):
    traced_wh.query(
        "SELECT COUNT(*) AS n FROM mseed.dataview WHERE F.network = 'NL'"
    )
    spans = traced_wh.db.last_report.spans
    assert spans["name"] == "query"
    phases = [c["name"] for c in spans["children"]]
    assert phases == ["parse", "bind", "optimize", "execute"]
    json.dumps(spans)  # must stay JSON-serialisable end to end
    def walk(span):
        yield span["name"]
        for child in span.get("children", ()):
            yield from walk(child)

    names = list(walk(spans))
    assert "PAggregate" in names and "PLazyFetch" in names


def test_extraction_spans_tagged_with_file_and_range(traced_wh):
    traced_wh.query(
        "SELECT COUNT(*) AS n FROM mseed.dataview WHERE F.network = 'NL'"
    )
    spans = traced_wh.db.last_report.spans

    def walk(span):
        yield span
        for child in span.get("children", ()):
            yield from walk(child)

    extracts = [s for s in walk(spans) if s["name"] == "trace:extract"]
    assert extracts, "lazy cold query must produce extraction spans"
    for span in extracts:
        attrs = span["attrs"]
        assert attrs["file"]
        assert attrs["seq_lo"] <= attrs["seq_hi"]


def test_trace_spans_streaming(traced_wh):
    with traced_wh.connect() as conn:
        cur = conn.cursor().execute(
            "SELECT R.seq_no FROM mseed.dataview WHERE F.network = 'NL'"
        )
        cur.fetchall()
        spans = cur.spans
    assert spans is not None and spans["name"] == "query"
    json.dumps(spans)


def test_spans_off_by_default(lazy_wh):
    lazy_wh.query("SELECT COUNT(*) AS n FROM mseed.files")
    assert lazy_wh.db.last_report.spans is None


def test_report_to_dict_gates_spans(traced_wh):
    traced_wh.query("SELECT COUNT(*) AS n FROM mseed.files")
    report = traced_wh.db.last_report
    assert "spans" not in report.to_dict()
    assert report.to_dict(include_spans=True)["spans"] is report.spans
    assert "pages_read" in report.to_dict()
