"""Golden-vector and differential tests for the Steim decoders.

The corpus in ``tests/data/steim_golden.json`` pins encoded payloads to
known sample arrays (negative diffs, every Steim-2 dnib class, partial
final frames, capacity overflow).  The table-driven decoder must match
both the goldens and ``_decode_reference`` bit-for-bit — the reference is
the semantic anchor for the vectorised rewrite.
"""

import base64
import json
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SteimError
from repro.mseed import steim

_GOLDEN = json.loads(
    (Path(__file__).parent / "data" / "steim_golden.json").read_text()
)["cases"]


def _decode_public(case, payload):
    fn = steim.decode_steim1 if case["level"] == 1 else steim.decode_steim2
    return fn(payload, case["nsamples"])


@pytest.mark.oracle
@pytest.mark.parametrize("case", _GOLDEN, ids=lambda c: c["name"])
def test_golden_decode(case):
    payload = base64.b64decode(case["payload_b64"])
    expected = np.array(case["samples"], dtype=np.int32)
    got = _decode_public(case, payload)
    assert got.dtype == np.int32
    assert np.array_equal(got, expected)


@pytest.mark.oracle
@pytest.mark.parametrize("case", _GOLDEN, ids=lambda c: c["name"])
def test_golden_matches_reference_bit_for_bit(case):
    payload = base64.b64decode(case["payload_b64"])
    fast = steim._decode(payload, case["nsamples"], case["level"])
    ref = steim._decode_reference(payload, case["nsamples"], case["level"])
    assert fast.dtype == ref.dtype
    assert np.array_equal(fast, ref)
    assert fast.tobytes() == ref.tobytes()


def test_reference_decoding_switch():
    samples = np.arange(-50, 50, dtype=np.int32)
    payload, k = steim.encode_steim2(samples, 4)
    with steim.reference_decoding():
        ref = steim.decode_steim2(payload, k)
    assert np.array_equal(ref, steim.decode_steim2(payload, k))
    assert not steim._USE_REFERENCE


def test_invalid_dnib_rejected_by_both():
    # Craft a frame whose word 3 claims nibble 10 with dnib 00 — an
    # illegal Steim-2 combination that both decoders must reject.
    header = 0
    nibbles = [0, 0, 0, 2] + [0] * 12
    for nib in nibbles:
        header = (header << 2) | nib
    words = [header, 0, 0, 0x00000005] + [0] * 12
    payload = np.array(words, dtype=">u4").tobytes()
    with pytest.raises(SteimError, match="dnib"):
        steim._decode(payload, 1, 2)
    with pytest.raises(SteimError, match="dnib"):
        steim._decode_reference(payload, 1, 2)


def test_truncated_payload_rejected_by_both():
    samples = np.arange(1000, dtype=np.int32)
    payload, k = steim.encode_steim2(samples, 8)
    short = payload[:steim.FRAME_BYTES]
    for decoder in (steim._decode, steim._decode_reference):
        with pytest.raises(SteimError, match="ended early"):
            decoder(short, k, 2)


def test_reverse_integration_mismatch_rejected_by_both():
    samples = np.arange(100, dtype=np.int32)
    payload, k = steim.encode_steim2(samples, 4)
    corrupt = bytearray(payload)
    corrupt[8:12] = np.array([999999], dtype=">u4").tobytes()  # XN slot
    for decoder in (steim._decode, steim._decode_reference):
        with pytest.raises(SteimError, match="reverse integration"):
            decoder(bytes(corrupt), k, 2)
        assert np.array_equal(
            decoder(bytes(corrupt), k, 2, check_integration=False),
            samples,
        )


def test_zero_samples():
    assert steim._decode(b"", 0, 2).size == 0
    assert steim._decode_reference(b"", 0, 2).size == 0


@pytest.mark.oracle
@settings(max_examples=60, deadline=None)
@given(
    data=st.data(),
    n=st.integers(min_value=1, max_value=600),
    level=st.sampled_from([1, 2]),
    scale=st.sampled_from([1, 2, 7, 100, 20000, 4_000_000, 2**27]),
)
def test_roundtrip_fuzz_new_vs_reference(data, n, level, scale):
    seed = data.draw(st.integers(min_value=0, max_value=2**32 - 1))
    rng = np.random.default_rng(seed)
    diffs = rng.integers(-scale, scale + 1, size=n)
    samples = np.clip(np.cumsum(diffs), -2**31 + 1, 2**31 - 1).astype(np.int32)
    encode = steim.encode_steim1 if level == 1 else steim.encode_steim2
    payload, k = encode(samples, max_frames=10)
    fast = steim._decode(payload, k, level)
    ref = steim._decode_reference(payload, k, level)
    assert np.array_equal(fast, samples[:k])
    assert fast.tobytes() == ref.tobytes()
