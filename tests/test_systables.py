"""``sys.*`` system tables: SQL queryability, isolation, freshness.

The tentpole contract: system tables are ordinary relations to the
planner — filterable, joinable, aggregatable through the same
vectorized executor as user tables — while staying read-only, epoch
stable (registering them never invalidates cached plans) and *fresh*
(every scan re-samples the provider; neither the plan cache nor the
recycler may serve stale system rows).
"""

from __future__ import annotations

import pytest

from repro.db import Database
from repro.db.catalog import SYSTEM_SCHEMA
from repro.db.table import ColumnSpec, SystemTable, TableSchema
from repro.db.types import DataType
from repro.errors import CatalogError, ExecutionError, SQLError
from repro.obs.systables import SYSTEM_TABLE_COLUMNS
from repro.seismology.warehouse import SeismicWarehouse

COUNT_NL = "SELECT COUNT(*) AS n FROM mseed.dataview WHERE F.network = 'NL'"


# ---------------------------------------------------------------------------
# engine-level: sys.queries / sys.sessions
# ---------------------------------------------------------------------------


def _tiny_db() -> Database:
    db = Database()
    db.execute("CREATE TABLE t (a BIGINT, b VARCHAR)")
    db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'x')")
    return db


def test_group_by_over_sys_queries():
    db = _tiny_db()
    db.query("SELECT a FROM t WHERE a > 1")
    db.query("SELECT b, count(*) FROM t GROUP BY b")
    rows = db.query(
        "SELECT status, count(*) AS n, max(execute_s) AS mx "
        "FROM sys.queries GROUP BY status").rows()
    assert rows == [("ok", 2, pytest.approx(rows[0][2]))]
    assert rows[0][2] > 0


def test_join_sys_queries_to_sys_sessions_via_cursor():
    db = _tiny_db()
    db.query("SELECT count(*) FROM t")
    from repro.api import Connection

    conn = Connection(db)
    cur = conn.cursor()
    cur.execute(
        "SELECT q.sql, s.queries FROM sys.queries q "
        "JOIN sys.sessions s ON q.session = s.session")
    rows = list(cur)
    assert rows, "join over system tables returned nothing"
    assert any("count(*)" in row[0] for row in rows)
    # Every journal row joined to the one default session.
    assert {row[1] for row in rows} == {1}


def test_failed_queries_journal_with_error_status():
    db = _tiny_db()
    with pytest.raises(SQLError):
        db.query("SELECT no_such_column FROM t")
    rows = db.query(
        "SELECT status, error FROM sys.queries WHERE status = 'error'"
    ).rows()
    assert len(rows) == 1
    assert "no_such_column" in rows[0][1]


def test_sys_queries_freshness_defeats_plan_and_recycler_caches():
    # The same aggregate SQL, executed repeatedly, must see the journal
    # grow: a cached plan snapshots the provider at execution time and
    # the recycler must not replay a previous scan's aggregate.
    db = _tiny_db()
    sql = "SELECT count(*) FROM sys.queries"
    counts = [db.query(sql).rows()[0][0] for _ in range(4)]
    assert counts == sorted(counts)
    assert counts[-1] > counts[0], f"stale system scan: {counts}"
    assert db.plan_cache_hits > 0, "plan cache never engaged"


def test_registration_is_epoch_stable():
    db = _tiny_db()
    epoch = db.catalog.epoch
    sql = "SELECT a FROM t ORDER BY a"
    db.query(sql)
    # Re-registering a system table must not invalidate cached plans.
    table = db.catalog.system_tables()["queries"]
    db.catalog.register_system_table(table)
    assert db.catalog.epoch == epoch
    before = db.plan_cache_hits
    db.query(sql)
    assert db.plan_cache_hits == before + 1


# ---------------------------------------------------------------------------
# read-only enforcement + reserved schema
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("sql", [
    "INSERT INTO sys.queries (id) VALUES (1)",
    "UPDATE sys.queries SET sql = 'x'",
    "DELETE FROM sys.queries",
    "CREATE TABLE sys.mine (a BIGINT)",
    "DROP TABLE sys.queries",
])
def test_sys_schema_rejects_writes(sql):
    db = _tiny_db()
    with pytest.raises((SQLError, CatalogError, ExecutionError)):
        db.execute(sql)
    # The failed DDL/DML itself never corrupts the journal tables.
    assert db.query("SELECT count(*) FROM sys.queries").rows()[0][0] >= 0


def test_reserved_schema_blocks_create_schema_and_views():
    db = Database()
    with pytest.raises(CatalogError):
        db.catalog.create_schema(SYSTEM_SCHEMA)
    with pytest.raises(CatalogError):
        db.catalog.drop_schema(SYSTEM_SCHEMA)


def test_system_table_mutation_api_is_sealed():
    db = Database()
    table = db.catalog.system_tables()["queries"]
    assert isinstance(table, SystemTable)
    with pytest.raises(ExecutionError):
        table.truncate()
    with pytest.raises(ExecutionError):
        table.append_pydict({"id": [1]})


def test_ragged_provider_is_an_execution_error():
    db = Database()
    schema = TableSchema([ColumnSpec("a", DataType.BIGINT),
                          ColumnSpec("b", DataType.BIGINT)])
    db.catalog.register_system_table(SystemTable(
        "sys.bad", schema, provider=lambda: {"a": [1, 2], "b": [1]}))
    with pytest.raises(ExecutionError):
        db.query("SELECT * FROM sys.bad")


# ---------------------------------------------------------------------------
# warehouse-level tables
# ---------------------------------------------------------------------------


def test_warehouse_registers_every_documented_table(demo_repo, tmp_path):
    wh = SeismicWarehouse(demo_repo.root, mode="lazy",
                          storage_path=tmp_path / "store")
    try:
        # sys.connections belongs to the wire server and only exists
        # while one is serving (covered by tests/test_net_server.py).
        assert set(wh.db.catalog.system_tables()) == \
            set(SYSTEM_TABLE_COLUMNS) - {"connections"}
        for name in wh.db.catalog.system_tables():
            rows = wh.query(f"SELECT * FROM sys.{name}").rows()
            width = len(SYSTEM_TABLE_COLUMNS[name])
            assert all(len(row) == width for row in rows), name
    finally:
        wh.close()


def test_sys_metrics_and_cache_reflect_query_work(demo_repo):
    wh = SeismicWarehouse(demo_repo.root, mode="lazy")
    try:
        wh.query(COUNT_NL)
        hit = wh.query(
            "SELECT value FROM sys.metrics "
            "WHERE name = 'repro_extract_rows_total' AND stat = 'value'"
        ).rows()
        assert hit and hit[0][0] > 0
        cached = wh.query(
            "SELECT count(*), sum(nbytes) FROM sys.extraction_cache"
        ).rows()[0]
        assert cached[0] > 0 and cached[1] > 0
    finally:
        wh.close()


def test_sys_heat_orders_hottest_first(demo_repo):
    wh = SeismicWarehouse(demo_repo.root, mode="lazy")
    try:
        wh.query(COUNT_NL)
        wh.query(COUNT_NL)
        rows = wh.query("SELECT uri, score FROM sys.heat").rows()
        assert rows
        scores = [row[1] for row in rows]
        assert scores == sorted(scores, reverse=True)
    finally:
        wh.close()
