"""Tests for the synthetic repository generator."""

import numpy as np
import pytest

from repro.mseed.files import read_file, scan_file_headers
from repro.mseed.inventory import DEFAULT_INVENTORY, find_station
from repro.mseed.synthesize import (
    RepositorySpec,
    SeismicEvent,
    WaveformSynthesizer,
    build_repository,
    make_filename,
    parse_filename,
)
from repro.util.timefmt import from_ymd


def test_filename_roundtrip():
    start = from_ymd(2010, 1, 12, 22, 10)
    name = make_filename("NL", "HGN", "", "BHZ", start)
    assert name == "NL.HGN..BHZ.2010.012.2210.mseed"
    parsed = parse_filename(name)
    assert parsed == {
        "network": "NL", "station": "HGN", "location": "", "channel": "BHZ",
        "year": "2010", "doy": "012", "hhmm": "2210",
    }


def test_parse_filename_rejects_foreign_names():
    assert parse_filename("random.mseed") is None
    assert parse_filename("a.b.c.d.e.f.g.h.mseed") is None
    assert parse_filename("NL.HGN..BHZ.year.012.2210.mseed") is None


def test_manifest_matches_files(tiny_repo):
    for entry in tiny_repo.entries:
        headers = scan_file_headers(entry.path)
        assert len(headers) == entry.n_records
        assert headers[0].station == entry.station
        assert headers[0].start_time_us == entry.start_time_us
        assert sum(h.sample_count for h in headers) == entry.n_samples


def test_deterministic_generation(tmp_path):
    spec = RepositorySpec(stations=DEFAULT_INVENTORY[:1],
                          channel_codes=("BHZ",), file_span_minutes=1)
    m1 = build_repository(tmp_path / "a", spec, seed=13)
    m2 = build_repository(tmp_path / "b", spec, seed=13)
    data1 = read_file(m1.entries[0].path)
    data2 = read_file(m2.entries[0].path)
    assert np.array_equal(
        np.concatenate([r.samples for r in data1]),
        np.concatenate([r.samples for r in data2]),
    )


def test_different_seeds_differ(tmp_path):
    spec = RepositorySpec(stations=DEFAULT_INVENTORY[:1],
                          channel_codes=("BHZ",), file_span_minutes=1)
    m1 = build_repository(tmp_path / "a", spec, seed=1)
    m2 = build_repository(tmp_path / "b", spec, seed=2)
    s1 = np.concatenate([r.samples for r in read_file(m1.entries[0].path)])
    s2 = np.concatenate([r.samples for r in read_file(m2.entries[0].path)])
    assert not np.array_equal(s1, s2)


def test_event_visible_above_noise():
    station = find_station("HGN")
    channel = station.channels[0]
    t0 = from_ymd(2010, 1, 12, 22, 0)
    event = SeismicEvent(
        event_id=0, origin_time_us=t0 + 60_000_000,
        latitude=station.latitude, longitude=station.longitude,
        magnitude=3.0, duration_s=20.0,
    )
    synth = WaveformSynthesizer([event], seed=4, noise_counts=100.0)
    wave = synth.synthesize(station, channel, t0, 40 * 180)
    quiet = np.abs(wave[: 40 * 50]).max()
    loud = np.abs(wave[40 * 60: 40 * 80]).max()
    assert loud > 5 * quiet


def test_event_arrival_delay_grows_with_distance():
    event = SeismicEvent(event_id=0, origin_time_us=0, latitude=52.0,
                         longitude=5.0, magnitude=2.5)
    near = find_station("DBN")   # ~ (52.1, 5.2)
    far = find_station("ISK")    # Istanbul
    assert event.arrival_time_us(far) > event.arrival_time_us(near)
    assert event.amplitude_at(far) < event.amplitude_at(near)


def test_spec_streams_filter_channels():
    spec = RepositorySpec(stations=DEFAULT_INVENTORY[:2],
                          channel_codes=("BHZ",))
    streams = spec.streams()
    assert all(ch.code == "BHZ" for _st, ch in streams)
    assert len(streams) == 2


def test_manifest_totals(tiny_repo):
    assert tiny_repo.total_samples == sum(
        e.n_samples for e in tiny_repo.entries
    )
    assert tiny_repo.total_bytes > 0
    by_station = tiny_repo.entries_for(station="HGN")
    assert all(e.station == "HGN" for e in by_station)
