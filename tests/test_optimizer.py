"""Plan-shape tests: the compile-time half of lazy extraction."""

import pytest

from repro.db.plan import logical as lg
from repro.db.plan.optimizer import split_conjuncts, and_together
from repro.seismology.queries import fig1_query1, fig1_query2
from repro.util.timefmt import from_ymd


def _find(node, kind):
    """All nodes of a type in a logical plan."""
    out = []
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, kind):
            out.append(current)
        stack.extend(current.children())
    return out


def test_split_and_rebuild_conjuncts():
    from repro.db import expr as ex
    from repro.db.types import DataType

    def lit(flag):
        e = ex.Literal(value=flag, dtype=DataType.BOOLEAN)
        return e

    tree = and_together([lit(True), lit(False), lit(True)])
    assert len(split_conjuncts(tree)) == 3
    assert and_together([]) is None


def test_lazy_plan_contains_lazy_fetch(lazy_wh):
    lazy_wh.query(fig1_query1())
    plan = lazy_wh.db.last_plan_optimized
    fetches = _find(plan, lg.LLazyFetch)
    assert len(fetches) == 1
    assert not _find(plan, lg.LScanAll)


def test_metadata_predicates_inside_meta_subplan(lazy_wh):
    lazy_wh.query(fig1_query1())
    fetch = _find(lazy_wh.db.last_plan_optimized, lg.LLazyFetch)[0]
    # The metadata sub-plan carries the station/channel filters: find at
    # least one filter over the files scan.
    meta_filters = _find(fetch.meta, lg.LFilter)
    assert meta_filters, "metadata predicates must be applied before fetch"
    scans = _find(fetch.meta, lg.LScan)
    assert {s.qualified_name for s in scans} == \
        {"mseed.files", "mseed.records"}


def test_time_bounds_extracted(lazy_wh):
    lazy_wh.query(fig1_query1())
    fetch = _find(lazy_wh.db.last_plan_optimized, lg.LLazyFetch)[0]
    lo, hi = fetch.time_bounds
    assert lo == from_ymd(2010, 1, 12, 22, 15)
    assert hi == from_ymd(2010, 1, 12, 22, 15, 2)


def test_column_pruning_reaches_extraction(lazy_wh):
    # Q2 never reads sample_time: extraction must not materialise it.
    lazy_wh.query(fig1_query2())
    fetch = _find(lazy_wh.db.last_plan_optimized, lg.LLazyFetch)[0]
    assert "sample_time" not in fetch.needed
    assert "sample_value" in fetch.needed


def test_scan_pruning(lazy_wh):
    lazy_wh.query("SELECT station FROM mseed.files WHERE network = 'NL'")
    scans = _find(lazy_wh.db.last_plan_optimized, lg.LScan)
    names = {c.name for c in scans[0].output}
    assert names == {"station", "network"}


def test_filter_pushed_below_join(lazy_wh):
    lazy_wh.query("""
        SELECT F.station FROM mseed.files AS F, mseed.records AS R
        WHERE F.file_location = R.file_location AND F.network = 'NL'""")
    plan = lazy_wh.db.last_plan_optimized
    joins = _find(plan, lg.LJoin)
    assert joins, "expected a join"
    filters_above = _find(plan, lg.LFilter)
    # The network filter must sit below the join (on the files side).
    below = _find(joins[0], lg.LFilter)
    assert below and all(f in below for f in filters_above)


def test_lazy_scan_without_metadata_degrades(lazy_wh):
    lazy_wh.query("SELECT COUNT(*) FROM mseed.data")
    plan = lazy_wh.db.last_plan_optimized
    assert _find(plan, lg.LScanAll)
    assert not _find(plan, lg.LLazyFetch)


def test_disable_lazy_rewrite_forces_scan_all(demo_repo):
    from repro.seismology.warehouse import SeismicWarehouse

    wh = SeismicWarehouse(demo_repo.root, mode="lazy",
                          enable_lazy_rewrite=False)
    wh.query(fig1_query1())
    plan = wh.db.last_plan_optimized
    assert _find(plan, lg.LScanAll)
    assert not _find(plan, lg.LLazyFetch)


def test_explain_mentions_rewrite_point(lazy_wh):
    text = lazy_wh.explain(fig1_query1())
    assert "LazyFetch" in text
    assert "run-time rewrite" in text
    assert "logical plan (as bound)" in text


def test_explain_statement_form(lazy_wh):
    result = lazy_wh.execute("EXPLAIN " + fig1_query2())
    assert "LazyFetch" in result.scalar()


def test_disable_pruning_keeps_all_columns(demo_repo):
    from repro.seismology.warehouse import SeismicWarehouse

    wh = SeismicWarehouse(demo_repo.root, mode="lazy", enable_pruning=False)
    wh.query(fig1_query2())
    fetch = _find(wh.db.last_plan_optimized, lg.LLazyFetch)[0]
    assert "sample_time" in fetch.needed  # no pruning
