"""Zone maps: per-page min/max in segment footers + scan page pruning.

Soundness contract: pruning only ever *skips* pages no row of which can
satisfy a pushed-down conjunct; the filter above retains the full
predicate, so every test here can (and does) check pruned results
against an unpruned reference — the rowpath interpreter, which runs
with zone pruning disabled.
"""

import math

import pytest

from repro.db.column import Column
from repro.db.exec.engine import Database
from repro.db.plan.physical import _zone_dead
from repro.db.types import DataType
from repro.storage.bufferpool import BufferPool
from repro.storage.segment import SegmentReader, SegmentWriter

ROWS = 40_000  # > 2 pages of 16384: three pages per column


def _build_store(tmp_path, rows=ROWS):
    db = Database()
    db.execute(
        "CREATE TABLE t (v BIGINT, f DOUBLE, s VARCHAR, n BIGINT)")
    db.table("main.t").append_pydict({
        "v": list(range(rows)),
        "f": [float(i) / 2 if i % 7 else None for i in range(rows)],
        "s": [f"x{i % 5}" for i in range(rows)],
        "n": [None] * rows,  # all-NULL: every zone entry is None
    })
    db.attach(tmp_path / "store")
    db.checkpoint()
    return tmp_path / "store"


def _open(store_path):
    db = Database()
    db.attach(store_path)
    assert db.table("main.t").disk_backing is not None
    return db


def _disk_db(tmp_path, rows=ROWS):
    return _open(_build_store(tmp_path, rows))


# ---------------------------------------------------------------------------
# Footer contents
# ---------------------------------------------------------------------------


def test_writer_records_per_page_min_max(tmp_path):
    path = tmp_path / "zones.seg"
    writer = SegmentWriter(path)
    writer.write_column(
        "v", Column.from_values(DataType.BIGINT, list(range(10))),
        page_rows=4)
    writer.write_column(
        "s", Column.from_values(DataType.VARCHAR, list("abcdefghij")),
        page_rows=4)
    writer.finish()
    reader = SegmentReader(path, BufferPool(1 << 20))
    try:
        assert reader.zone_map("v") == [(0, 3), (4, 7), (8, 9)]
        assert reader.zone_map("s") is None  # non-numeric: no zones
        assert reader.page_row_counts("v") == [4, 4, 2]
    finally:
        reader.close()


def test_null_and_nan_values_never_enter_zones(tmp_path):
    path = tmp_path / "zones.seg"
    writer = SegmentWriter(path)
    writer.write_column(
        "f", Column.from_values(
            DataType.DOUBLE,
            [1.5, None, 3.0, math.nan] + [None] * 4),
        page_rows=4)
    writer.finish()
    reader = SegmentReader(path, BufferPool(1 << 20))
    try:
        # Page 1: min/max over {1.5, 3.0} only; page 2 has no valid
        # comparable value at all.
        assert reader.zone_map("f") == [(1.5, 3.0), None]
    finally:
        reader.close()


# ---------------------------------------------------------------------------
# The page-death predicate itself
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("zone,op,value,dead", [
    ((10, 20), "=", 5, True),
    ((10, 20), "=", 15, False),
    ((10, 20), "=", 25, True),
    ((10, 20), "<", 10, True),
    ((10, 20), "<", 11, False),
    ((10, 20), "<=", 9, True),
    ((10, 20), "<=", 10, False),
    ((10, 20), ">", 20, True),
    ((10, 20), ">", 19, False),
    ((10, 20), ">=", 21, True),
    ((10, 20), ">=", 20, False),
    ((10, 10), "!=", 10, True),   # constant page, excluded value
    ((10, 20), "!=", 10, False),
    (None, ">", 0, True),          # page with no comparable values
    ((10, 20), ">", None, True),   # NULL constant: nothing qualifies
    ((10, 20), "<", math.nan, True),
])
def test_zone_dead(zone, op, value, dead):
    assert _zone_dead(zone, op, value) is dead


# ---------------------------------------------------------------------------
# End-to-end pruning: identical answers, fewer pages decoded
# ---------------------------------------------------------------------------


PRUNABLE = [
    "SELECT count(*), min(v), max(v) FROM t WHERE v < 100",
    "SELECT count(*) FROM t WHERE v >= 39990",
    "SELECT count(*) FROM t WHERE 20000 <= v AND v <= 20004",  # flipped side
    "SELECT count(*) FROM t WHERE v BETWEEN 16000 AND 16500 AND f > 0",
    "SELECT sum(v) FROM t WHERE f < 50.0",
    "SELECT count(*) FROM t WHERE v = 123 AND s = 'x3'",
    "SELECT count(*) FROM t WHERE n > 0",        # all-NULL column: 0 rows
    "SELECT count(*) FROM t WHERE v < -1",       # every page dead
]


@pytest.mark.parametrize("sql", PRUNABLE)
def test_pruned_scan_matches_rowpath(tmp_path, sql):
    store = _build_store(tmp_path)
    # The rowpath reference faults whole columns resident, so it gets
    # its own connection — the pruned run must start disk-backed.
    reference, ref_report, _ = _open(store).query_rowpath(sql)
    assert ref_report.pages_skipped_zone == 0  # baseline never prunes
    db = _open(store)
    assert db.query(sql).rows() == reference.rows()
    assert db.last_report.pages_skipped_zone > 0


@pytest.mark.parametrize("sql", PRUNABLE)
def test_pruned_streaming_matches_rowpath(tmp_path, sql):
    store = _build_store(tmp_path)
    reference, _, _ = _open(store).query_rowpath(sql)
    run = _open(store).open_query(sql, batch_rows=512)
    rows = [row for batch in run.batches() for row in batch.rows()]
    assert rows == reference.rows()
    assert run.report.pages_skipped_zone > 0


def test_streaming_scan_skips_dead_pages_entirely(tmp_path):
    db = _disk_db(tmp_path)
    run = db.open_query("SELECT v FROM t WHERE v >= 39999", batch_rows=64)
    rows = [r[0] for b in run.batches() for r in b.rows()]
    assert rows == [39999]
    # Only the last of the three v-pages survives its zone check.
    assert run.report.pages_read == 1
    assert run.report.pages_skipped_zone == 2


def test_param_conjuncts_prune_per_execution(tmp_path):
    db = _disk_db(tmp_path)
    sql = "SELECT count(*) FROM t WHERE v < ?"
    assert db.query(sql, [100]).rows() == [(100,)]
    assert db.last_report.pages_skipped_zone == 2
    # A different binding prunes differently — and a NULL binding makes
    # the conjunct unsatisfiable, so every page is provably dead.
    assert db.query(sql, [20000]).rows() == [(20000,)]
    assert db.last_report.pages_skipped_zone == 1
    assert db.query(sql, [None]).rows() == [(0,)]
    assert db.last_report.pages_skipped_zone == 3
    assert db.last_report.pages_read == 0


def test_resident_columns_stay_row_aligned(tmp_path):
    db = _disk_db(tmp_path)
    # Fault `s` fully into memory (no prunable conjunct, whole scan).
    db.query("SELECT DISTINCT s FROM t")
    assert db.table("main.t").is_column_resident("s")
    # Now a pruned scan mixes a resident column with paged reads.
    rows = db.query(
        "SELECT v, s FROM t WHERE v BETWEEN 16382 AND 16385").rows()
    assert rows == [(i, f"x{i % 5}") for i in range(16382, 16386)]


def test_pruned_scan_never_caches_partial_columns(tmp_path):
    db = _disk_db(tmp_path)
    db.query("SELECT v FROM t WHERE v < 5")
    assert not db.table("main.t").is_column_resident("v")
    # The full, unpruned scan afterwards sees every row.
    assert db.query("SELECT count(*) FROM t").rows() == [(ROWS,)]


def test_explain_documents_zone_pruning(tmp_path):
    db = _disk_db(tmp_path)
    plan = db.explain("SELECT v FROM t WHERE v < 100")
    assert "zone-prune[v < 100]" in plan
    assert "skip 2/3 pages/col" in plan


def test_no_pruning_without_conjuncts_or_backing(tmp_path):
    db = _disk_db(tmp_path)
    assert db.query("SELECT count(*) FROM t WHERE s = 'x1'").rows() \
        == [(ROWS // 5,)]
    assert db.last_report.pages_skipped_zone == 0  # VARCHAR: no zones
    db.execute("INSERT INTO t (v, f, s, n) VALUES (-1, 0.0, 'y', 0)")
    assert db.table("main.t").disk_backing is None  # copy-on-write detach
    assert db.query("SELECT count(*) FROM t WHERE v < 100").rows() \
        == [(101,)]
