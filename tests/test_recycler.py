"""Intermediate-result recycling tests (the lazy-loading substrate)."""

import numpy as np
import pytest

from repro.db import Database
from repro.db.column import Column
from repro.db.exec.recycler import Recycler, signature_of
from repro.db.plan.logical import bind_select
from repro.db.sql.parser import parse_select
from repro.db.types import DataType


def _col(values):
    return Column.from_values(DataType.BIGINT, values)


def test_lookup_admit_roundtrip():
    recycler = Recycler(budget_bytes=1 << 20)
    assert recycler.lookup("sig") is None
    recycler.admit("sig", [_col([1, 2, 3])], 3)
    columns, length = recycler.lookup("sig")
    assert length == 3
    assert columns[0].to_pylist() == [1, 2, 3]
    assert recycler.stats.hits == 1


def test_budget_eviction_lru_order():
    entry_bytes = _col(list(range(100))).memory_bytes()
    recycler = Recycler(budget_bytes=entry_bytes * 2 + 16)
    recycler.admit("a", [_col(list(range(100)))], 100)
    recycler.admit("b", [_col(list(range(100)))], 100)
    recycler.lookup("a")  # a becomes most recently used
    recycler.admit("c", [_col(list(range(100)))], 100)
    assert recycler.lookup("b") is None  # b was LRU
    assert recycler.lookup("a") is not None
    assert recycler.stats.evictions == 1


def test_fifo_policy_ignores_recency():
    entry_bytes = _col(list(range(100))).memory_bytes()
    recycler = Recycler(budget_bytes=entry_bytes * 2 + 16, policy="fifo")
    recycler.admit("a", [_col(list(range(100)))], 100)
    recycler.admit("b", [_col(list(range(100)))], 100)
    recycler.lookup("a")
    recycler.admit("c", [_col(list(range(100)))], 100)
    assert recycler.lookup("a") is None  # oldest admission evicted


def test_oversized_entry_rejected():
    recycler = Recycler(budget_bytes=64)
    accepted = recycler.admit("big", [_col(list(range(1000)))], 1000)
    assert not accepted
    assert recycler.stats.rejected == 1


def test_invalidate_matching():
    recycler = Recycler()
    recycler.admit("scan(main.t@v1:[a])", [_col([1])], 1)
    recycler.admit("scan(main.u@v1:[a])", [_col([1])], 1)
    dropped = recycler.invalidate_matching("main.t@")
    assert dropped == 1
    assert len(recycler) == 1


def _signature_for(db, sql):
    plan = bind_select(db.catalog, parse_select(sql))
    return signature_of(plan)


def test_signature_stable_across_compiles():
    db = Database()
    db.execute("CREATE TABLE t (a BIGINT, b VARCHAR)")
    sql = "SELECT b, SUM(a) FROM t WHERE a > 3 GROUP BY b"
    assert _signature_for(db, sql) == _signature_for(db, sql)


def test_signature_distinguishes_predicates():
    db = Database()
    db.execute("CREATE TABLE t (a BIGINT, b VARCHAR)")
    one = _signature_for(db, "SELECT SUM(a) FROM t WHERE a > 3")
    two = _signature_for(db, "SELECT SUM(a) FROM t WHERE a > 4")
    assert one != two


def test_signature_embeds_table_version():
    db = Database()
    db.execute("CREATE TABLE t (a BIGINT)")
    sql = "SELECT SUM(a) FROM t"
    before = _signature_for(db, sql)
    db.execute("INSERT INTO t VALUES (1)")
    after = _signature_for(db, sql)
    assert before != after


def test_recycling_skips_recompute_and_stays_correct():
    db = Database(recycler_budget_bytes=1 << 20)
    db.execute("CREATE TABLE t (g VARCHAR, v BIGINT)")
    db.execute("INSERT INTO t VALUES ('x', 1), ('x', 2), ('y', 5)")
    sql = "SELECT g, SUM(v) FROM t GROUP BY g ORDER BY g"
    first = db.query(sql).rows()
    assert db.recycler.stats.admissions >= 1
    second = db.query(sql).rows()
    assert second == first
    assert db.recycler.stats.hits >= 1
    assert any(e.get("op") == "recycler_hit" for e in db.last_trace)


def test_update_invalidates_recycled_result():
    db = Database(recycler_budget_bytes=1 << 20)
    db.execute("CREATE TABLE t (g VARCHAR, v BIGINT)")
    db.execute("INSERT INTO t VALUES ('x', 1)")
    sql = "SELECT SUM(v) FROM t"
    assert db.query(sql).scalar() == 1
    db.execute("INSERT INTO t VALUES ('x', 9)")
    assert db.query(sql).scalar() == 10  # stale hit would return 1


def test_disable_recycler():
    db = Database(enable_recycler=False)
    db.execute("CREATE TABLE t (v BIGINT)")
    db.execute("INSERT INTO t VALUES (1)")
    db.query("SELECT SUM(v) FROM t")
    assert db.recycler is None


def test_contents_listing():
    recycler = Recycler()
    recycler.admit("sig-a", [_col([1, 2])], 2)
    contents = recycler.contents()
    assert contents[0][0] == "sig-a"
    assert contents[0][1] == 2


def test_unknown_policy_rejected():
    from repro.errors import ExecutionError

    with pytest.raises(ExecutionError):
        Recycler(policy="random")
