"""Refresh behaviour: new, modified and removed files (§1, §3.3)."""

import os

import numpy as np
import pytest

from repro.mseed.files import write_mseed_file
from repro.mseed.repository import Repository
from repro.seismology.queries import fig1_query2
from repro.seismology.warehouse import SeismicWarehouse
from repro.util.timefmt import from_ymd


def _rewrite_file(entry, offset=1000):
    """Overwrite a manifest entry's file with shifted content."""
    samples = (np.arange(entry.n_samples, dtype=np.int32) % 100) + offset
    write_mseed_file(
        entry.path,
        network=entry.network, station=entry.station,
        location=entry.location, channel=entry.channel,
        start_time_us=entry.start_time_us, sample_rate=entry.sample_rate,
        samples=samples,
    )
    stat = os.stat(entry.path)
    os.utime(entry.path, ns=(stat.st_atime_ns, stat.st_mtime_ns + 10**9))


def test_query_time_staleness_without_sync(mutable_repo):
    """The paper's pure-lazy refresh: no sync call, the cache notices."""
    wh = SeismicWarehouse(mutable_repo.root, mode="lazy",
                          enable_recycler=False)
    entry = next(e for e in mutable_repo.entries
                 if e.station == "HGN" and e.channel == "BHZ")
    q = ("SELECT MAX(D.sample_value) FROM mseed.dataview "
         "WHERE F.station = 'HGN' AND F.channel = 'BHZ'")
    before = wh.query(q).scalar()
    _rewrite_file(entry, offset=50_000)
    after = wh.query(q).scalar()
    assert after >= 50_000
    assert after != before
    assert wh.cache.stats.stale_drops > 0


def test_sync_picks_up_new_file(mutable_repo):
    wh = SeismicWarehouse(mutable_repo.root, mode="lazy")
    files_before = wh.query("SELECT COUNT(*) FROM mseed.files").scalar()
    new_path = os.path.join(mutable_repo.root, "NL", "HGN",
                            "NL.HGN..BHZ.2010.013.2200.mseed")
    write_mseed_file(
        new_path, network="NL", station="HGN", location="", channel="BHZ",
        start_time_us=from_ymd(2010, 1, 13, 22, 0), sample_rate=40.0,
        samples=np.arange(4000, dtype=np.int32),
    )
    report = wh.sync()
    assert len(report.added) == 1
    assert wh.query("SELECT COUNT(*) FROM mseed.files").scalar() == \
        files_before + 1
    # The new file's data is immediately queryable (lazily).
    count = wh.query(
        "SELECT COUNT(*) FROM mseed.dataview "
        "WHERE R.start_time >= '2010-01-13T00:00:00'").scalar()
    assert count == 4000


def test_sync_updates_modified_file_metadata(mutable_repo):
    wh = SeismicWarehouse(mutable_repo.root, mode="lazy")
    entry = mutable_repo.entries[0]
    uri = os.path.relpath(entry.path, mutable_repo.root)
    _rewrite_file(entry)
    report = wh.sync()
    assert uri in report.updated
    # Record metadata reflects the rewritten file's (different) layout.
    from repro.mseed.files import scan_file_headers

    records = wh.query(
        f"SELECT COUNT(*) FROM mseed.records "
        f"WHERE file_location = '{uri}'").scalar()
    assert records == len(scan_file_headers(entry.path))


def test_sync_removes_vanished_file(mutable_repo):
    wh = SeismicWarehouse(mutable_repo.root, mode="lazy")
    entry = mutable_repo.entries[0]
    uri = os.path.relpath(entry.path, mutable_repo.root)
    os.remove(entry.path)
    report = wh.sync()
    assert uri in report.removed
    left = wh.query(
        f"SELECT COUNT(*) FROM mseed.files "
        f"WHERE file_location = '{uri}'").scalar()
    assert left == 0


def test_sync_is_idempotent(mutable_repo):
    wh = SeismicWarehouse(mutable_repo.root, mode="lazy")
    first = wh.sync()
    assert first.changed == 0
    second = wh.sync()
    assert second.changed == 0


def test_eager_refresh_reloads_changed_data(mutable_repo):
    wh = SeismicWarehouse(mutable_repo.root, mode="eager")
    entry = next(e for e in mutable_repo.entries
                 if e.station == "DBN" and e.channel == "BHZ")
    q = ("SELECT MAX(D.sample_value) FROM mseed.dataview "
         "WHERE F.station = 'DBN' AND F.channel = 'BHZ'")
    before = wh.query(q).scalar()
    _rewrite_file(entry, offset=70_000)
    report = wh.sync()
    assert report.samples_reloaded == entry.n_samples
    after = wh.query(q).scalar()
    assert after >= 70_000 and after != before


def test_external_mode_sees_changes_without_sync(mutable_repo):
    wh = SeismicWarehouse(mutable_repo.root, mode="external")
    entry = next(e for e in mutable_repo.entries
                 if e.station == "HGN" and e.channel == "BHE")
    q = ("SELECT MAX(D.sample_value) FROM mseed.dataview "
         "WHERE F.station = 'HGN' AND F.channel = 'BHE'")
    wh.query(q)
    _rewrite_file(entry, offset=90_000)
    assert wh.query(q).scalar() >= 90_000
    assert wh.sync().changed == 0  # nothing to sync


# ---------------------------------------------------------------------------
# MetadataSync edge cases (scan/harvest races, no-op touches, idempotence)
# ---------------------------------------------------------------------------


class VanishingRepository(Repository):
    """Deletes a target file right after it is listed — the classic live
    archive race between the directory scan and the per-file harvest."""

    def __init__(self, root, vanish_uri):
        super().__init__(root)
        self.vanish_uri = vanish_uri
        self.armed = False

    def list_files(self):
        infos = super().list_files()
        if self.armed:
            os.remove(self.root / self.vanish_uri)
            self.armed = False
        return infos


def test_sync_survives_file_removed_between_scan_and_harvest(mutable_repo):
    """A *new* file that vanishes mid-sync is skipped, not crashed on."""
    repo = Repository(mutable_repo.root)
    wh = SeismicWarehouse(repo, mode="lazy")
    files_before = wh.query("SELECT COUNT(*) FROM mseed.files").scalar()

    new_uri = "NL/HGN/NL.HGN..BHZ.2010.014.2200.mseed"
    new_path = os.path.join(mutable_repo.root, new_uri)
    write_mseed_file(
        new_path, network="NL", station="HGN", location="", channel="BHZ",
        start_time_us=from_ymd(2010, 1, 14, 22, 0), sample_rate=40.0,
        samples=np.arange(2000, dtype=np.int32),
    )
    vanishing = VanishingRepository(mutable_repo.root, new_uri)
    wh.pipeline.repo = vanishing  # the sync lists through this repo
    vanishing.armed = True
    report = wh.sync()
    assert new_uri not in report.added
    assert wh.query("SELECT COUNT(*) FROM mseed.files").scalar() == \
        files_before
    # Once the race is over, a later sync converges (file is simply gone).
    assert wh.sync().changed == 0


def test_sync_survives_updated_file_removed_between_scan_and_harvest(
        mutable_repo):
    """An *updated* file that vanishes mid-sync degrades to a removal."""
    repo = Repository(mutable_repo.root)
    wh = SeismicWarehouse(repo, mode="lazy")
    entry = mutable_repo.entries[0]
    uri = os.path.relpath(entry.path, mutable_repo.root)
    _rewrite_file(entry)  # make the file look updated to the sync

    vanishing = VanishingRepository(mutable_repo.root, uri)
    wh.pipeline.repo = vanishing
    vanishing.armed = True
    report = wh.sync()
    assert uri in report.removed and uri not in report.updated
    assert wh.query(
        f"SELECT COUNT(*) FROM mseed.files WHERE file_location = '{uri}'"
    ).scalar() == 0
    # The record index forgot the file too: queries still run fine.
    assert wh.sync().changed == 0
    wh.query("SELECT COUNT(*) FROM mseed.dataview")


def test_sync_after_touch_with_identical_content(mutable_repo):
    """mtime bumped, bytes identical: metadata converges to the same rows
    and the data answers do not change."""
    wh = SeismicWarehouse(mutable_repo.root, mode="lazy")
    q = ("SELECT MAX(D.sample_value), COUNT(*) FROM mseed.dataview "
         "WHERE F.station = 'HGN' AND F.channel = 'BHZ'")
    before = wh.query(q).rows()
    records_before = wh.query("SELECT COUNT(*) FROM mseed.records").scalar()

    entry = next(e for e in mutable_repo.entries
                 if e.station == "HGN" and e.channel == "BHZ")
    uri = os.path.relpath(entry.path, mutable_repo.root)
    stat = os.stat(entry.path)
    os.utime(entry.path, ns=(stat.st_atime_ns, stat.st_mtime_ns + 10**9))

    report = wh.sync()
    assert uri in report.updated  # mtime is the only change signal we have
    assert wh.query("SELECT COUNT(*) FROM mseed.records").scalar() == \
        records_before
    assert wh.query(q).rows() == before
    # No duplicate F rows for the touched file.
    assert wh.query(
        f"SELECT COUNT(*) FROM mseed.files WHERE file_location = '{uri}'"
    ).scalar() == 1


def test_repeated_sync_is_idempotent_after_changes(mutable_repo):
    wh = SeismicWarehouse(mutable_repo.root, mode="lazy")
    entry = mutable_repo.entries[1]
    _rewrite_file(entry)
    os.remove(mutable_repo.entries[2].path)
    first = wh.sync()
    assert first.changed == 2
    files_after = wh.query("SELECT COUNT(*) FROM mseed.files").scalar()
    records_after = wh.query("SELECT COUNT(*) FROM mseed.records").scalar()
    # Converged: further syncs see nothing and change nothing.
    for _ in range(2):
        again = wh.sync()
        assert again.changed == 0
        assert wh.query("SELECT COUNT(*) FROM mseed.files").scalar() == \
            files_after
        assert wh.query("SELECT COUNT(*) FROM mseed.records").scalar() == \
            records_after


def test_recycler_never_serves_stale_results_after_rewrite(mutable_repo):
    """Recycled intermediates pin their source files' mtimes: a warm
    (cache-hit) query admits a live signature, the file changes, and the
    next query must re-extract instead of replaying the cached result."""
    wh = SeismicWarehouse(mutable_repo.root, mode="lazy")  # recycler ON
    q = ("SELECT MAX(D.sample_value) FROM mseed.dataview "
         "WHERE F.station = 'HGN' AND F.channel = 'BHZ'")
    wh.query(q)                  # cold: extracts (epoch bumps mid-query)
    before = wh.query(q).scalar()  # warm: admits a reusable signature
    assert wh.query(q).scalar() == before  # recycler serves the warm repeat
    assert wh.recycler.stats.hits > 0

    entry = next(e for e in mutable_repo.entries
                 if e.station == "HGN" and e.channel == "BHZ")
    _rewrite_file(entry, offset=120_000)
    after = wh.query(q).scalar()
    assert after >= 120_000 and after != before
    assert wh.recycler.stats.stale_drops > 0
