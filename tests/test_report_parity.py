"""QueryReport counter parity between execution paths.

The materialised (`Database.query`) and streaming (cursor) paths share
``_fold_trace_counters``; these tests pin that the counters a report
carries are identical whichever path ran the query, and that
promoted-fetch page I/O is counted exactly once.
"""

from __future__ import annotations

import pytest

from repro.db.exec.engine import QueryReport, _fold_trace_counters
from repro.seismology.warehouse import SeismicWarehouse

PARITY_COUNTERS = (
    "rows_out", "rows_extracted", "pages_read", "pages_skipped",
    "rows_extracted_here", "rows_coalesced", "rows_served_eager",
)

QUERIES = [
    "SELECT COUNT(*) AS n FROM mseed.dataview WHERE F.network = 'NL'",
    "SELECT F.station, MIN(D.sample_value) AS lo FROM mseed.dataview "
    "WHERE F.network = 'NL' GROUP BY F.station ORDER BY F.station",
    "SELECT R.seq_no FROM mseed.dataview "
    "WHERE F.station = 'HGN' AND F.channel = 'BHZ'",
]


def _materialized(wh, sql) -> QueryReport:
    _result, report, _trace = wh.db.query_with_report(sql)
    return report


def _streamed(wh, sql) -> QueryReport:
    with wh.connect() as conn:
        cur = conn.cursor().execute(sql, batch_rows=128)
        cur.fetchall()
        return cur.report


@pytest.mark.parametrize("sql", QUERIES)
def test_materialized_and_streaming_counters_match(demo_repo, sql):
    # Two fresh warehouses: each path starts from the same cold state.
    mat = SeismicWarehouse(demo_repo.root, mode="lazy")
    stream = SeismicWarehouse(demo_repo.root, mode="lazy")
    cold_a, cold_b = _materialized(mat, sql), _streamed(stream, sql)
    warm_a, warm_b = _materialized(mat, sql), _streamed(stream, sql)
    for name in PARITY_COUNTERS:
        assert getattr(cold_a, name) == getattr(cold_b, name), \
            f"cold {name} diverged"
        assert getattr(warm_a, name) == getattr(warm_b, name), \
            f"warm {name} diverged"
    assert cold_a.rows_extracted_here > 0
    assert warm_a.rows_extracted_here == 0  # served from the cache


# ---------------------------------------------------------------------------
# _fold_trace_counters
# ---------------------------------------------------------------------------


def test_fold_trace_counters_accumulates_each_op():
    report = QueryReport(pages_read=5)  # scan-side I/O already counted
    trace = [
        {"op": "rewrite", "table": "mseed.data"},
        {"op": "extract", "rows": 100, "records": 2},
        {"op": "extract", "rows": 50, "records": 1},
        {"op": "extract_wait", "rows": 30},
        {"op": "promoted_fetch", "rows": 40, "records": 3, "pages_read": 7},
    ]
    _fold_trace_counters(report, trace)
    assert report.rows_extracted_here == 150
    assert report.rows_coalesced == 30
    assert report.rows_served_eager == 40
    assert report.promotions == 3
    # Promoted pages add to the scan pages exactly once.
    assert report.pages_read == 12


def test_fold_trace_counters_ignores_unknown_ops():
    report = QueryReport()
    _fold_trace_counters(report, [{"op": "cache_fetch", "rows": 99},
                                  {"no_op_key": True}])
    assert report.rows_extracted_here == 0
    assert report.rows_served_eager == 0


def test_promoted_fetch_pages_counted_once(demo_repo, tmp_path):
    wh = SeismicWarehouse(demo_repo.root, mode="lazy",
                          storage_path=tmp_path / "store")
    sql = QUERIES[0]
    wh.query(sql)
    wh.query(sql)  # heat the units so promotion has a workload signal
    promoted = wh.promote(min_score=0.0)
    assert promoted.promoted_units > 0
    wh.cache.clear()  # the warm cache would shadow the promoted path

    _result, report, trace = wh.db.query_with_report(sql)
    promoted_pages = sum(e.get("pages_read", 0) for e in trace
                         if e.get("op") == "promoted_fetch")
    assert report.rows_served_eager > 0
    assert promoted_pages > 0
    # All page I/O of this metadata-light query is the promoted fetch;
    # a double-fold would report twice this.
    assert report.pages_read == promoted_pages


def test_promoted_parity_between_paths(demo_repo, tmp_path):
    sql = QUERIES[0]

    def promoted_wh(where):
        wh = SeismicWarehouse(demo_repo.root, mode="lazy",
                              storage_path=tmp_path / where)
        wh.query(sql)
        wh.query(sql)
        wh.promote(min_score=0.0)
        wh.cache.clear()  # force the next run onto the promoted path
        return wh

    mat = _materialized(promoted_wh("a"), sql)
    stream = _streamed(promoted_wh("b"), sql)
    for name in PARITY_COUNTERS:
        assert getattr(mat, name) == getattr(stream, name), f"{name} diverged"
    assert mat.rows_served_eager > 0
