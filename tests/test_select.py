"""End-to-end SELECT tests against small in-memory tables."""

import pytest

from repro.db import Database
from repro.errors import BindError, SQLError, TypeMismatchError


@pytest.fixture()
def db():
    database = Database()
    database.execute("""CREATE TABLE people (
        id BIGINT PRIMARY KEY, name VARCHAR, age BIGINT, city VARCHAR)""")
    database.execute("""INSERT INTO people VALUES
        (1, 'ada', 36, 'london'), (2, 'bob', 25, 'paris'),
        (3, 'cee', 25, 'london'), (4, 'dan', NULL, 'berlin')""")
    database.execute("""CREATE TABLE visits (
        person_id BIGINT, place VARCHAR, spend DOUBLE)""")
    database.execute("""INSERT INTO visits VALUES
        (1, 'museum', 10.5), (1, 'cafe', 4.0), (2, 'cafe', 3.0),
        (5, 'park', 0.0)""")
    return database


def test_projection_and_arithmetic(db):
    rows = db.query("SELECT name, age * 2 AS dbl FROM people WHERE id = 1").rows()
    assert rows == [("ada", 72)]


def test_where_and_comparison(db):
    rows = db.query("SELECT name FROM people WHERE age > 25").rows()
    assert rows == [("ada",)]


def test_null_semantics_in_where(db):
    # dan has NULL age: neither > nor <= matches (three-valued logic).
    over = db.query("SELECT COUNT(*) FROM people WHERE age > 0").scalar()
    under = db.query("SELECT COUNT(*) FROM people WHERE age <= 0").scalar()
    assert over == 3 and under == 0
    nulls = db.query(
        "SELECT name FROM people WHERE age IS NULL").rows()
    assert nulls == [("dan",)]


def test_order_by_asc_desc_nulls_last(db):
    names = [r[0] for r in db.query(
        "SELECT name FROM people ORDER BY age, name").rows()]
    assert names == ["bob", "cee", "ada", "dan"]
    names = [r[0] for r in db.query(
        "SELECT name FROM people ORDER BY age DESC, name").rows()]
    assert names == ["ada", "bob", "cee", "dan"]


def test_order_by_alias_and_position(db):
    rows = db.query(
        "SELECT name, age * 2 AS dbl FROM people "
        "WHERE age IS NOT NULL ORDER BY dbl DESC").rows()
    assert rows[0][0] == "ada"
    rows2 = db.query(
        "SELECT name, age FROM people WHERE age IS NOT NULL "
        "ORDER BY 2 DESC").rows()
    assert rows2[0][0] == "ada"


def test_limit_offset(db):
    rows = db.query(
        "SELECT name FROM people ORDER BY id LIMIT 2 OFFSET 1").rows()
    assert rows == [("bob",), ("cee",)]


def test_distinct(db):
    rows = db.query("SELECT DISTINCT age FROM people ORDER BY age").rows()
    assert rows == [(25,), (36,), (None,)]


def test_inner_join(db):
    rows = db.query("""
        SELECT p.name, v.place FROM people AS p
        JOIN visits AS v ON p.id = v.person_id
        ORDER BY p.name, v.place""").rows()
    assert rows == [("ada", "cafe"), ("ada", "museum"), ("bob", "cafe")]


def test_left_join_pads_nulls(db):
    rows = db.query("""
        SELECT p.name, v.place FROM people AS p
        LEFT JOIN visits AS v ON p.id = v.person_id
        ORDER BY p.name, v.place""").rows()
    assert ("cee", None) in rows and ("dan", None) in rows
    assert len(rows) == 5


def test_comma_join_with_where(db):
    rows = db.query("""
        SELECT p.name FROM people AS p, visits AS v
        WHERE p.id = v.person_id AND v.place = 'museum'""").rows()
    assert rows == [("ada",)]


def test_cross_join_count(db):
    count = db.query(
        "SELECT COUNT(*) FROM people CROSS JOIN visits").scalar()
    assert count == 16


def test_subquery_in_from(db):
    rows = db.query("""
        SELECT big.name FROM (
            SELECT name, age FROM people WHERE age >= 25
        ) AS big WHERE big.age > 30""").rows()
    assert rows == [("ada",)]


def test_between_in_like(db):
    rows = db.query(
        "SELECT name FROM people WHERE age BETWEEN 25 AND 30 "
        "AND city IN ('paris', 'london') AND name LIKE '_o%'").rows()
    assert rows == [("bob",)]


def test_case_expression(db):
    rows = db.query("""
        SELECT name, CASE WHEN age >= 30 THEN 'senior'
                          WHEN age >= 18 THEN 'adult'
                          ELSE 'unknown' END AS bracket
        FROM people ORDER BY id""").rows()
    assert rows[0] == ("ada", "senior")
    assert rows[1] == ("bob", "adult")
    assert rows[3] == ("dan", "unknown")


def test_scalar_functions(db):
    row = db.query(
        "SELECT UPPER(name), LENGTH(city), ABS(-5) FROM people WHERE id = 1"
    ).first()
    assert row == ("ADA", 6, 5)


def test_concat_operator(db):
    value = db.query(
        "SELECT name || '@' || city FROM people WHERE id = 2").scalar()
    assert value == "bob@paris"


def test_division_is_double_and_by_zero_null(db):
    assert db.query("SELECT 7 / 2 FROM people WHERE id = 1").scalar() == 3.5
    assert db.query("SELECT 7 / 0 FROM people WHERE id = 1").scalar() is None


def test_coalesce_and_nullif(db):
    rows = db.query(
        "SELECT COALESCE(age, -1) FROM people ORDER BY id").rows()
    assert rows == [(36,), (25,), (25,), (-1,)]
    assert db.query(
        "SELECT NULLIF(city, 'berlin') FROM people WHERE id = 4").scalar() is None


def test_unknown_column_and_table_errors(db):
    with pytest.raises(BindError):
        db.query("SELECT ghost FROM people")
    with pytest.raises(BindError):
        db.query("SELECT name FROM ghosts")


def test_ambiguous_column_error(db):
    db.execute("CREATE TABLE other (name VARCHAR)")
    db.execute("INSERT INTO other VALUES ('x')")
    with pytest.raises(BindError):
        db.query("SELECT name FROM people, other")


def test_type_mismatch_error(db):
    with pytest.raises(TypeMismatchError):
        db.query("SELECT name + 1 FROM people")


def test_query_rejects_ddl(db):
    with pytest.raises(SQLError):
        db.query("CREATE TABLE nope (a BIGINT)")


def test_result_helpers(db):
    result = db.query("SELECT name, age FROM people ORDER BY id")
    assert result.row_count == 4
    assert result.column_count == 2
    assert result.names == ["name", "age"]
    assert result.column("age").to_pylist()[0] == 36
    assert "ada" in result.format()
    pydict = result.to_pydict()
    assert pydict["name"][1] == "bob"
