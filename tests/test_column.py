"""Tests for the typed column abstraction."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.db.column import Column
from repro.db.types import DataType
from repro.errors import ExecutionError


def test_from_values_with_nulls():
    col = Column.from_values(DataType.BIGINT, [1, None, 3])
    assert len(col) == 3
    assert col.has_nulls
    assert col.to_pylist() == [1, None, 3]


def test_from_values_varchar():
    col = Column.from_values(DataType.VARCHAR, ["a", None, "c"])
    assert col.to_pylist() == ["a", None, "c"]


def test_constant_and_nulls():
    const = Column.constant(DataType.DOUBLE, 1.5, 4)
    assert const.to_pylist() == [1.5] * 4
    nulls = Column.nulls(DataType.VARCHAR, 3)
    assert nulls.to_pylist() == [None] * 3
    assert Column.constant(DataType.BIGINT, None, 2).to_pylist() == [None, None]


def test_take_filter_slice_preserve_nulls():
    col = Column.from_values(DataType.BIGINT, [10, None, 30, 40])
    taken = col.take(np.array([3, 1]))
    assert taken.to_pylist() == [40, None]
    filtered = col.filter(np.array([True, True, False, False]))
    assert filtered.to_pylist() == [10, None]
    assert col.slice(1, 3).to_pylist() == [None, 30]


def test_concat():
    a = Column.from_values(DataType.BIGINT, [1, 2])
    b = Column.from_values(DataType.BIGINT, [None, 4])
    merged = Column.concat([a, b])
    assert merged.to_pylist() == [1, 2, None, 4]
    with pytest.raises(ExecutionError):
        Column.concat([])
    with pytest.raises(ExecutionError):
        Column.concat([a, Column.from_values(DataType.DOUBLE, [1.0])])


def test_with_nulls_at():
    col = Column.from_values(DataType.BIGINT, [1, 2, 3])
    masked = col.with_nulls_at(np.array([False, True, False]))
    assert masked.to_pylist() == [1, None, 3]


def test_factorize_orders_and_nulls():
    col = Column.from_values(DataType.VARCHAR, ["b", "a", None, "b"])
    codes, count = col.factorize()
    assert count >= 2
    assert codes[0] == codes[3]
    assert codes[2] == -1
    assert codes[1] < codes[0]  # 'a' sorts before 'b'


def test_memory_bytes_varchar_counts_payload():
    small = Column.from_values(DataType.VARCHAR, ["x"])
    large = Column.from_values(DataType.VARCHAR, ["x" * 1000])
    assert large.memory_bytes() > small.memory_bytes() + 900


def test_value_at_types():
    col = Column.from_values(DataType.BOOLEAN, [True, False])
    assert col.value_at(0) is True
    ts = Column.from_values(DataType.TIMESTAMP, [12345])
    assert isinstance(ts.value_at(0), int)


def test_mismatched_mask_rejected():
    with pytest.raises(ExecutionError):
        Column(DataType.BIGINT, np.array([1, 2]), np.array([True]))


@given(st.lists(st.one_of(st.integers(-1000, 1000), st.none()),
                min_size=1, max_size=50))
def test_take_identity_property(values):
    col = Column.from_values(DataType.BIGINT, values)
    identity = col.take(np.arange(len(values)))
    assert identity.to_pylist() == col.to_pylist()


@given(st.lists(st.integers(-100, 100), min_size=1, max_size=50),
       st.lists(st.booleans(), min_size=1, max_size=50))
def test_filter_matches_python(values, mask_bits):
    size = min(len(values), len(mask_bits))
    col = Column.from_values(DataType.BIGINT, values[:size])
    mask = np.array(mask_bits[:size])
    expected = [v for v, keep in zip(values[:size], mask_bits[:size]) if keep]
    assert col.filter(mask).to_pylist() == expected
