"""Tests for the SEED BTIME codec."""

import datetime as dt

import pytest
from hypothesis import given, strategies as st

from repro.errors import CorruptRecordError
from repro.mseed.btime import (
    BTIME_SIZE,
    btime_residual_us,
    decode_btime,
    encode_btime,
)
from repro.util.timefmt import from_ymd


def test_encode_size_and_roundtrip():
    stamp = from_ymd(2010, 1, 12, 22, 15, 2, 123400)
    blob = encode_btime(stamp)
    assert len(blob) == BTIME_SIZE
    # BTIME resolution is 100 us; the residual travels separately.
    assert decode_btime(blob) == stamp - stamp % 100
    assert decode_btime(blob, extra_us=btime_residual_us(stamp)) == stamp


def test_residual():
    stamp = from_ymd(2010, 1, 12) + 123_456
    assert btime_residual_us(stamp) == 56


def test_decode_rejects_short_buffer():
    with pytest.raises(CorruptRecordError):
        decode_btime(b"\x00" * 5)


def test_decode_rejects_bad_fields():
    good = bytearray(encode_btime(from_ymd(2010, 1, 12)))
    bad_yday = bytearray(good)
    bad_yday[2:4] = (400).to_bytes(2, "big")
    with pytest.raises(CorruptRecordError):
        decode_btime(bytes(bad_yday))
    bad_hour = bytearray(good)
    bad_hour[4] = 25
    with pytest.raises(CorruptRecordError):
        decode_btime(bytes(bad_hour))
    bad_tenk = bytearray(good)
    bad_tenk[8:10] = (10_000).to_bytes(2, "big")
    with pytest.raises(CorruptRecordError):
        decode_btime(bytes(bad_tenk))


def test_leap_second_folds_forward():
    # second == 60 is legal SEED; we fold it into the next minute.
    blob = bytearray(encode_btime(from_ymd(2012, 6, 30, 23, 59, 59)))
    blob[6] = 60  # the 'second' byte of BTIME
    decoded = decode_btime(bytes(blob))
    assert decoded == from_ymd(2012, 7, 1, 0, 0, 0)


@given(
    st.datetimes(
        min_value=dt.datetime(1971, 1, 1),
        max_value=dt.datetime(2090, 12, 31),
    )
)
def test_btime_roundtrip_property(moment):
    stamp = from_ymd(moment.year, moment.month, moment.day, moment.hour,
                     moment.minute, moment.second, moment.microsecond)
    rebuilt = decode_btime(encode_btime(stamp),
                           extra_us=btime_residual_us(stamp))
    assert rebuilt == stamp
