"""Tests for the SQL parser."""

import pytest

from repro.db import expr as ex
from repro.db.sql import ast
from repro.db.sql.parser import parse_select, parse_statement
from repro.errors import ParseError


def test_parse_paper_query_one():
    stmt = parse_select("""SELECT AVG(D.sample_value)
FROM mseed.dataview
WHERE F.station = 'ISK'
AND F.channel = 'BHE'
AND R.start_time > '2010-01-12T00:00:00.000'
AND R.start_time < '2010-01-12T23:59:59.999'
AND D.sample_time > '2010-01-12T22:15:00.000'
AND D.sample_time < '2010-01-12T22:15:02.000';""")
    assert len(stmt.items) == 1
    assert isinstance(stmt.items[0].expr, ex.AggCall)
    assert isinstance(stmt.from_items[0], ast.TableRef)
    assert stmt.from_items[0].parts == ("mseed", "dataview")
    assert stmt.where is not None


def test_parse_paper_query_two():
    stmt = parse_select("""SELECT F.station,
MIN(D.sample_value), MAX(D.sample_value)
FROM mseed.dataview
WHERE F.network = 'NL'
AND F.channel = 'BHZ'
GROUP BY F.station;""")
    assert len(stmt.items) == 3
    assert len(stmt.group_by) == 1
    group = stmt.group_by[0]
    assert isinstance(group, ex.ColumnRef)
    assert group.parts == ("f", "station")


def test_operator_precedence():
    stmt = parse_select("SELECT 1 + 2 * 3 FROM t")
    expr = stmt.items[0].expr
    assert isinstance(expr, ex.BinOp) and expr.op == "+"
    assert isinstance(expr.right, ex.BinOp) and expr.right.op == "*"


def test_and_or_precedence():
    stmt = parse_select("SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3")
    where = stmt.where
    assert isinstance(where, ex.BinOp) and where.op == "or"
    assert isinstance(where.right, ex.BinOp) and where.right.op == "and"


def test_not_between_in_like():
    stmt = parse_select(
        "SELECT a FROM t WHERE a NOT BETWEEN 1 AND 2 "
        "AND b NOT IN (1, 2) AND c NOT LIKE 'x%' AND d IS NOT NULL"
    )
    conjuncts = []
    stack = [stmt.where]
    while stack:
        node = stack.pop()
        if isinstance(node, ex.BinOp) and node.op == "and":
            stack.extend([node.left, node.right])
        else:
            conjuncts.append(node)
    kinds = {type(c) for c in conjuncts}
    assert kinds == {ex.Between, ex.InList, ex.Like, ex.IsNull}
    assert all(getattr(c, "negated") for c in conjuncts)


def test_joins():
    stmt = parse_select(
        "SELECT * FROM a JOIN b ON a.x = b.x "
        "LEFT JOIN c ON b.y = c.y CROSS JOIN d"
    )
    outer = stmt.from_items[0]
    assert isinstance(outer, ast.JoinRef) and outer.kind == "cross"
    left = outer.left
    assert isinstance(left, ast.JoinRef) and left.kind == "left"
    assert isinstance(left.left, ast.JoinRef) and left.left.kind == "inner"


def test_subquery_in_from():
    stmt = parse_select("SELECT s.a FROM (SELECT a FROM t) AS s")
    sub = stmt.from_items[0]
    assert isinstance(sub, ast.SubqueryRef)
    assert sub.alias == "s"


def test_order_limit_offset_distinct():
    stmt = parse_select(
        "SELECT DISTINCT a, b FROM t ORDER BY a DESC, b LIMIT 10 OFFSET 5"
    )
    assert stmt.distinct
    assert stmt.order_by[0].ascending is False
    assert stmt.order_by[1].ascending is True
    assert stmt.limit == 10 and stmt.offset == 5


def test_case_and_cast():
    stmt = parse_select(
        "SELECT CASE WHEN a > 0 THEN 'pos' ELSE 'neg' END, "
        "CAST(a AS DOUBLE) FROM t"
    )
    assert isinstance(stmt.items[0].expr, ex.Case)
    assert isinstance(stmt.items[1].expr, ex.Cast)


def test_create_table_with_keys():
    stmt = parse_statement("""CREATE TABLE mseed.records (
        file_location VARCHAR(255) NOT NULL,
        seq_no BIGINT,
        frequency DOUBLE,
        PRIMARY KEY (file_location, seq_no),
        FOREIGN KEY (file_location) REFERENCES mseed.files (file_location)
    )""")
    assert isinstance(stmt, ast.CreateTableStmt)
    assert stmt.primary_key == ["file_location", "seq_no"]
    assert stmt.foreign_keys[0].ref_table == ("mseed", "files")
    assert stmt.columns[0].not_null


def test_create_table_inline_pk():
    stmt = parse_statement("CREATE TABLE t (id BIGINT PRIMARY KEY, v DOUBLE)")
    assert stmt.primary_key == ["id"]
    assert stmt.columns[0].not_null


def test_duplicate_pk_rejected():
    with pytest.raises(ParseError):
        parse_statement(
            "CREATE TABLE t (id BIGINT PRIMARY KEY, PRIMARY KEY (id))"
        )


def test_create_view_and_schema_and_drop():
    view = parse_statement("CREATE VIEW v AS SELECT a FROM t")
    assert isinstance(view, ast.CreateViewStmt)
    schema = parse_statement("CREATE SCHEMA IF NOT EXISTS mseed")
    assert isinstance(schema, ast.CreateSchemaStmt) and schema.if_not_exists
    drop = parse_statement("DROP TABLE IF EXISTS t")
    assert isinstance(drop, ast.DropStmt) and drop.if_exists


def test_insert_delete_update():
    insert = parse_statement(
        "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')"
    )
    assert isinstance(insert, ast.InsertStmt)
    assert len(insert.rows) == 2
    delete = parse_statement("DELETE FROM t WHERE a = 1")
    assert isinstance(delete, ast.DeleteStmt)
    update = parse_statement("UPDATE t SET a = 2, b = 'z' WHERE a = 1")
    assert isinstance(update, ast.UpdateStmt)
    assert len(update.assignments) == 2


def test_explain():
    stmt = parse_statement("EXPLAIN SELECT a FROM t")
    assert isinstance(stmt, ast.ExplainStmt)


def test_count_star_only_for_count():
    stmt = parse_select("SELECT COUNT(*) FROM t")
    agg = stmt.items[0].expr
    assert isinstance(agg, ex.AggCall) and agg.arg is None
    with pytest.raises(ParseError):
        parse_select("SELECT SUM(*) FROM t")


def test_trailing_garbage_rejected():
    with pytest.raises(ParseError):
        parse_statement("SELECT a FROM t extra nonsense ,")


def test_alias_forms():
    stmt = parse_select("SELECT a AS x, b y FROM t AS u")
    assert stmt.items[0].alias == "x"
    assert stmt.items[1].alias == "y"
    assert stmt.from_items[0].alias == "u"


def test_star_variants():
    stmt = parse_select("SELECT *, t.* FROM t")
    assert isinstance(stmt.items[0].expr, ex.Star)
    assert stmt.items[1].expr.qualifier == "t"
