"""INSERT / DELETE / UPDATE and constraint enforcement."""

import numpy as np
import pytest

from repro.db import Database
from repro.errors import ConstraintError, ExecutionError


@pytest.fixture()
def db():
    database = Database()
    database.execute("""CREATE TABLE t (
        id BIGINT PRIMARY KEY, name VARCHAR NOT NULL, score DOUBLE)""")
    return database


def test_insert_and_count(db):
    db.execute("INSERT INTO t VALUES (1, 'a', 1.5), (2, 'b', NULL)")
    assert db.query("SELECT COUNT(*) FROM t").scalar() == 2


def test_insert_column_subset_fills_nulls(db):
    db.execute("INSERT INTO t (id, name) VALUES (1, 'a')")
    assert db.query("SELECT score FROM t").scalar() is None


def test_primary_key_enforced(db):
    db.execute("INSERT INTO t VALUES (1, 'a', 0.0)")
    with pytest.raises(ConstraintError):
        db.execute("INSERT INTO t VALUES (1, 'dup', 0.0)")


def test_pk_duplicate_within_batch(db):
    with pytest.raises(ConstraintError):
        db.execute("INSERT INTO t VALUES (5, 'x', 0.0), (5, 'y', 0.0)")


def test_not_null_enforced(db):
    with pytest.raises(ConstraintError):
        db.execute("INSERT INTO t VALUES (1, NULL, 0.0)")


def test_delete_where(db):
    db.execute("INSERT INTO t VALUES (1, 'a', 1.0), (2, 'b', 2.0)")
    status = db.execute("DELETE FROM t WHERE id = 1")
    assert "1 rows" in status.scalar()
    assert db.query("SELECT name FROM t").rows() == [("b",)]
    # The freed PK value is reusable.
    db.execute("INSERT INTO t VALUES (1, 'again', 0.0)")


def test_delete_all(db):
    db.execute("INSERT INTO t VALUES (1, 'a', 1.0), (2, 'b', 2.0)")
    db.execute("DELETE FROM t")
    assert db.query("SELECT COUNT(*) FROM t").scalar() == 0


def test_update(db):
    db.execute("INSERT INTO t VALUES (1, 'a', 1.0), (2, 'b', 2.0)")
    db.execute("UPDATE t SET score = score * 10 WHERE name = 'a'")
    rows = db.query("SELECT score FROM t ORDER BY id").rows()
    assert rows == [(10.0,), (2.0,)]


def test_update_pk_rejected(db):
    db.execute("INSERT INTO t VALUES (1, 'a', 1.0)")
    with pytest.raises(ConstraintError):
        db.execute("UPDATE t SET id = 9")


def test_insert_arity_mismatch(db):
    with pytest.raises(ExecutionError):
        db.execute("INSERT INTO t VALUES (1, 'a')")


def test_bulk_insert_and_versioning(db):
    table = db.table("main.t")
    version = table.version
    db.bulk_insert(("main", "t"), {
        "id": np.arange(5, dtype=np.int64),
        "name": ["n" + str(i) for i in range(5)],
        "score": np.linspace(0, 1, 5),
    })
    assert db.query("SELECT COUNT(*) FROM t").scalar() == 5
    assert table.version > version


def test_bulk_insert_missing_column(db):
    with pytest.raises(ExecutionError):
        db.bulk_insert(("main", "t"), {"id": [1]})


def test_foreign_key_validation():
    db = Database()
    db.execute("CREATE TABLE parent (pid BIGINT PRIMARY KEY)")
    db.execute("""CREATE TABLE child (
        cid BIGINT PRIMARY KEY, pid BIGINT,
        FOREIGN KEY (pid) REFERENCES parent (pid))""")
    db.execute("INSERT INTO parent VALUES (1)")
    db.execute("INSERT INTO child VALUES (10, 1), (11, NULL)")
    child = db.table("main.child")
    child.validate_foreign_keys(lambda name: db.table(name))
    db.execute("INSERT INTO child VALUES (12, 99)")
    with pytest.raises(ConstraintError):
        child.validate_foreign_keys(lambda name: db.table(name))


def test_timestamp_coercion_on_insert():
    db = Database()
    db.execute("CREATE TABLE e (at TIMESTAMP)")
    db.execute("INSERT INTO e VALUES ('2010-01-12T22:15:00.000')")
    from repro.util.timefmt import from_ymd

    assert db.query("SELECT at FROM e").scalar() == \
        from_ymd(2010, 1, 12, 22, 15)
