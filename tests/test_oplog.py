"""Tests for the operation log (demo capability 8)."""

from repro.util.oplog import OperationLog


def test_record_and_order():
    log = OperationLog()
    log.record("etl", "first")
    log.record("query", "second", rows=10)
    log.record("etl", "third")
    assert len(log) == 3
    assert [e.message for e in log] == ["first", "second", "third"]
    assert [e.seq for e in log] == [1, 2, 3]


def test_category_filter_and_categories():
    log = OperationLog()
    log.record("a", "x")
    log.record("b", "y")
    log.record("a", "z")
    assert [e.message for e in log.entries("a")] == ["x", "z"]
    assert log.categories() == ["a", "b"]


def test_detail_rendering():
    log = OperationLog()
    entry = log.record("cache", "hit", file="f1", records=3)
    text = entry.render()
    assert "cache" in text and "file=f1" in text and "records=3" in text
    assert "#00001" in text


def test_subscribe_listener():
    log = OperationLog()
    seen = []
    log.subscribe(seen.append)
    log.record("x", "one")
    log.record("x", "two")
    assert [e.message for e in seen] == ["one", "two"]


def test_tail_and_clear():
    log = OperationLog()
    for i in range(30):
        log.record("c", f"m{i}")
    assert [e.message for e in log.tail(2)] == ["m28", "m29"]
    log.clear()
    assert len(log) == 0
    assert log.render() == ""
