"""Sharded scatter-gather execution: correctness, failure, lifecycle.

The load-bearing guarantee is bit-exactness: a sharded warehouse must
answer every query identically to the single-process engine — decomposed
aggregates (per-shard partials + combine) and scattered-extraction
queries alike.  The differential oracle enforces it three ways at once,
because ``query_rowpath`` runs the preserved single-process plan while
``query``/``open_query`` run the sharded one.
"""

from __future__ import annotations

import logging
import os

import numpy as np
import pytest

from repro.errors import ServiceError, ShardConfigError, ShardWorkerError
from repro.mseed.files import write_mseed_file
from repro.seismology.queries import analytical_suite, fig1_query1, \
    fig1_query2
from repro.seismology.warehouse import SeismicWarehouse
from repro.shard.partition import ShardMap

CORPUS = [("fig1_q1", fig1_query1()), ("fig1_q2", fig1_query2())] + [
    (spec.qid, spec.sql) for spec in analytical_suite()
]


@pytest.fixture(scope="module")
def baseline(demo_repo):
    wh = SeismicWarehouse(demo_repo.root, mode="lazy")
    yield wh
    wh.close()


@pytest.fixture(scope="module")
def sharded2(demo_repo):
    wh = SeismicWarehouse(demo_repo.root, mode="lazy", shards=2)
    yield wh
    wh.close()


@pytest.fixture(scope="module")
def sharded3(demo_repo):
    wh = SeismicWarehouse(demo_repo.root, mode="lazy", shards=3)
    yield wh
    wh.close()


def _rewrite_file(entry, offset=1000):
    samples = (np.arange(entry.n_samples, dtype=np.int32) % 100) + offset
    write_mseed_file(
        entry.path,
        network=entry.network, station=entry.station,
        location=entry.location, channel=entry.channel,
        start_time_us=entry.start_time_us, sample_rate=entry.sample_rate,
        samples=samples,
    )
    stat = os.stat(entry.path)
    os.utime(entry.path, ns=(stat.st_atime_ns, stat.st_mtime_ns + 10**9))


# -- partitioning ------------------------------------------------------------


def test_shard_map_hash_partition_is_total_and_stable():
    uris = [f"dir/file-{i}.mseed" for i in range(37)]
    m = ShardMap.build(uris, 4, by="hash")
    assert sum(m.counts()) == 37
    for uri in uris:
        assert uri in m.uris_of(m.shard_of(uri))
    again = ShardMap.build(list(reversed(uris)), 4, by="hash")
    assert all(m.shard_of(u) == again.shard_of(u) for u in uris)


def test_shard_map_range_partition_is_contiguous():
    uris = [f"f{i:03d}.mseed" for i in range(10)]
    m = ShardMap.build(uris, 3, by="range")
    chunks = [m.uris_of(i) for i in range(3)]
    assert [u for chunk in chunks for u in chunk] == sorted(uris)
    assert all(m.shard_of(u) == i
               for i, chunk in enumerate(chunks) for u in chunk)


# -- bit-exactness -----------------------------------------------------------


@pytest.mark.oracle
@pytest.mark.parametrize("fixture", ["sharded2", "sharded3"])
@pytest.mark.parametrize("qid,sql", CORPUS)
def test_sharded_differential_oracle(request, fixture, qid, sql):
    """Vectorised (sharded), streamed (sharded) and rowpath (preserved
    single-process plan) agree bit-for-bit on the whole corpus."""
    from oracle import run_differential

    wh = request.getfixturevalue(fixture)
    run_differential(wh.db, sql)


@pytest.mark.parametrize("qid,sql", CORPUS)
def test_sharded_matches_single_process(baseline, sharded2, qid, sql):
    from oracle import column_fingerprint

    expected = baseline.query(sql)
    got = sharded2.query(sql)
    assert got.names == expected.names
    assert [column_fingerprint(c) for c in got.columns] == \
           [column_fingerprint(c) for c in expected.columns], qid


def test_shards_one_is_the_unmodified_engine(demo_repo, baseline):
    from oracle import column_fingerprint

    wh = SeismicWarehouse(demo_repo.root, mode="lazy", shards=1)
    try:
        assert wh.sharding is None
        assert wh.db.shard_router is None
        assert wh.pipeline.binding.remote_extractor is None
        sql = fig1_query2()
        assert [column_fingerprint(c) for c in wh.query(sql).columns] == \
               [column_fingerprint(c) for c in baseline.query(sql).columns]
    finally:
        wh.close()


# -- plan decomposition ------------------------------------------------------


def test_decomposable_queries_scatter(sharded2):
    router = sharded2.db.shard_router
    before = router.decomposed
    sharded2.db.clear_plan_cache()
    sharded2.query(fig1_query2())  # MIN/MAX GROUP BY: decomposes
    assert router.decomposed == before + 1
    plan = sharded2.explain(fig1_query2())
    assert "== sharded execution (2 shards) ==" in plan
    assert "scatter (per shard):" in plan
    assert "combine:" in plan


def test_non_decomposable_queries_fall_back(sharded2):
    stddev = next(s.sql for s in analytical_suite() if s.qid == "Q7")
    plan = sharded2.explain(stddev)
    assert "single plan; extraction scattered" in plan
    router = sharded2.db.shard_router
    before = router.fallbacks
    sharded2.db.clear_plan_cache()
    sharded2.query(stddev)
    assert router.fallbacks > before


def test_metadata_queries_stay_parent_local(sharded2):
    q8 = next(s.sql for s in analytical_suite() if s.qid == "Q8")
    router = sharded2.db.shard_router
    decomposed, fallbacks = router.decomposed, router.fallbacks
    sharded2.db.clear_plan_cache()
    sharded2.query(q8)  # touches only metadata tables: never offered
    assert (router.decomposed, router.fallbacks) == (decomposed, fallbacks)


def test_report_folds_worker_counters(sharded2):
    sharded2.sharding.clear_caches()
    sharded2.db.clear_plan_cache()
    result, report, trace = sharded2.db.query_with_report(fig1_query2())
    assert result.row_count > 0
    assert report.rows_extracted > 0  # extraction happened in workers
    partials = [e for e in trace if e.get("op") == "shard_partial"]
    assert len(partials) == 2
    assert sum(e["rows_extracted"] for e in partials) == \
           report.rows_extracted


def test_sys_shards_table(sharded2):
    rows = sharded2.query(
        "SELECT shard_id, alive, files FROM sys.shards "
        "ORDER BY shard_id").rows()
    assert [r[0] for r in rows] == [0, 1]
    assert all(r[1] for r in rows)
    assert sum(r[2] for r in rows) == 12  # every demo file owned once


def test_shard_metrics_exported(sharded2):
    sharded2.query(fig1_query2())
    names = sharded2.metrics()
    assert names["repro_shard_workers"]["samples"][0]["value"] == 2
    assert "repro_shard_queries_total" in names
    assert "repro_shard_plans_decomposed_total" in names


# -- failure handling --------------------------------------------------------


def test_worker_killed_mid_request_raises_typed_error(demo_repo):
    wh = SeismicWarehouse(demo_repo.root, mode="lazy", shards=2)
    try:
        executor = wh.sharding
        handle = executor._handles[0]
        # Deterministic mid-request death: the request is in flight (the
        # reply can never come) when the worker is SIGKILLed.
        with handle.lock:
            handle.conn.send({"cmd": "ping"})
            handle.proc.kill()
            handle.proc.join(timeout=10.0)
            # Drain whatever the worker flushed before dying, then the
            # next wait must surface the death as a typed error.
            with pytest.raises(ShardWorkerError):
                executor._recv(handle, 10.0, "ping")
                executor._recv(handle, 10.0, "ping")
        # The pool self-heals: the next scatter respawns shard 0 and the
        # query still answers correctly.
        result = wh.query(fig1_query2())
        assert result.row_count > 0
        assert executor.stats[0].restarts >= 1
        assert executor.stats[0].errors >= 1
    finally:
        wh.close()


def test_worker_killed_between_queries_respawns(demo_repo):
    wh = SeismicWarehouse(demo_repo.root, mode="lazy", shards=2)
    try:
        before = wh.query(fig1_query2()).rows()
        handle = wh.sharding._handles[1]
        handle.proc.kill()
        handle.proc.join(timeout=10.0)
        assert wh.query(fig1_query2()).rows() == before
        assert wh.sharding.stats[1].restarts == 1
    finally:
        wh.close()


def test_rewrite_invalidates_owning_shard_only(mutable_repo):
    wh = SeismicWarehouse(mutable_repo.root, mode="lazy", shards=2,
                          enable_recycler=False)
    try:
        sql = ("SELECT F.station, COUNT(D.sample_value) AS n "
               "FROM mseed.dataview GROUP BY F.station ORDER BY F.station")
        wh.query(sql)  # populate every worker's extraction cache
        entry = next(e for e in mutable_repo.entries
                     if e.station == "HGN" and e.channel == "BHZ")
        uri = os.path.relpath(entry.path, mutable_repo.root).replace(
            os.sep, "/")
        owner = wh.sharding.shard_map.shard_of(uri)
        before = {s["pid"]: s["cache"]["stale_drops"]
                  for s in wh.sharding.worker_stats()}
        _rewrite_file(entry, offset=50_000)
        after_result = wh.query(sql)
        assert after_result.row_count > 0
        after = wh.sharding.worker_stats()
        for shard_id, stats in enumerate(after):
            drops = stats["cache"]["stale_drops"] - before[stats["pid"]]
            if shard_id == owner:
                assert drops > 0, "owning shard must drop stale entries"
            else:
                assert drops == 0, \
                    "non-owning shard caches must be untouched"
    finally:
        wh.close()


# -- lifecycle & validation --------------------------------------------------


def test_close_drains_shards_before_storage_and_is_idempotent(demo_repo,
                                                              monkeypatch):
    wh = SeismicWarehouse(demo_repo.root, mode="lazy", shards=2)
    executor = wh.sharding
    order = []
    original_close = executor.close
    monkeypatch.setattr(executor, "close",
                        lambda: (order.append("shards"), original_close())[1])
    original_unreg = wh.metrics_registry.unregister_collector
    monkeypatch.setattr(
        wh.metrics_registry, "unregister_collector",
        lambda c: (order.append("observability"), original_unreg(c))[1])
    wh.close()
    assert order == ["shards", "observability"]
    assert executor.closed
    assert wh.sharding is None
    assert wh.db.shard_router is None
    assert wh.pipeline.binding.remote_extractor is None
    wh.close()  # second close: strictly a no-op
    assert order == ["shards", "observability"]


def test_service_owns_sharding_lifecycle(demo_repo):
    wh = SeismicWarehouse(demo_repo.root, mode="lazy")
    try:
        assert wh.sharding is None
        with wh.serve(max_workers=2, shards=2) as svc:
            assert wh.sharding is not None
            session = svc.session("t")
            outcome = session.submit(fig1_query2()).result()
            assert outcome.result.row_count > 0
        assert wh.sharding is None  # service created it, service tore it down
    finally:
        wh.close()


def test_shard_count_validation(demo_repo):
    with pytest.raises(ShardConfigError, match="positive integer"):
        SeismicWarehouse(demo_repo.root, mode="lazy", shards=0)
    with pytest.raises(ShardConfigError, match="positive integer"):
        SeismicWarehouse(demo_repo.root, mode="lazy", shards=-3)
    with pytest.raises(ShardConfigError, match="mode='lazy'"):
        SeismicWarehouse(demo_repo.root, mode="eager", shards=2)
    with pytest.raises(ShardConfigError, match="'hash' or 'range'"):
        SeismicWarehouse(demo_repo.root, mode="lazy", shard_by="modulo")


def test_custom_adapter_rejected_when_sharded(demo_repo):
    from repro.etl.mseed_adapter import MSeedAdapter

    class Custom(MSeedAdapter):
        pass

    with pytest.raises(ShardConfigError, match="custom adapter"):
        SeismicWarehouse(demo_repo.root, mode="lazy", shards=2,
                         adapter=Custom())


def test_service_config_validates_shards():
    from repro.service.service import ServiceConfig

    with pytest.raises(ServiceError, match="shards"):
        ServiceConfig(shards=0)
    with pytest.raises(ServiceError, match="shards"):
        ServiceConfig(shards=True)


def test_more_shards_than_files_warns(tiny_repo, caplog):
    with caplog.at_level(logging.WARNING, logger="repro.warehouse"):
        wh = SeismicWarehouse(tiny_repo.root, mode="lazy", shards=3)
    try:
        assert any("exceeds the repository's" in r.message
                   for r in caplog.records)
        # Empty shards are harmless: partials return zero rows.
        assert wh.query(fig1_query2()).row_count >= 0
    finally:
        wh.close()


def test_cli_shards_flag(capsys):
    from repro.net.cli import build_parser, main

    assert "--shards" in build_parser().format_help()
    assert main(["--shards", "0", "--auth-token", "t=s"]) == 2
    assert "shards" in capsys.readouterr().err
    assert main(["--shards", "2", "--mode", "eager",
                 "--auth-token", "t=s"]) == 2
    assert "--mode lazy" in capsys.readouterr().err
