"""Direct tests of the physical-operator machinery."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.db.column import Column
from repro.db.plan.physical import join_indices, _combined_codes
from repro.db.types import DataType


def _bigint(values):
    return Column.from_values(DataType.BIGINT, values)


def _varchar(values):
    return Column.from_values(DataType.VARCHAR, values)


def test_join_indices_simple():
    left_idx, right_idx, counts = join_indices(
        [_bigint([1, 2, 3])], [_bigint([2, 2, 4])]
    )
    pairs = set(zip(left_idx.tolist(), right_idx.tolist()))
    assert pairs == {(1, 0), (1, 1)}
    assert counts.tolist() == [0, 2, 0]


def test_join_indices_nulls_never_match():
    left_idx, right_idx, _counts = join_indices(
        [_bigint([1, None, 3])], [_bigint([None, 1, None])]
    )
    pairs = set(zip(left_idx.tolist(), right_idx.tolist()))
    assert pairs == {(0, 1)}


def test_join_indices_multikey():
    left = [_varchar(["a", "a", "b"]), _bigint([1, 2, 1])]
    right = [_varchar(["a", "b", "a"]), _bigint([2, 1, 9])]
    left_idx, right_idx, _ = join_indices(left, right)
    pairs = set(zip(left_idx.tolist(), right_idx.tolist()))
    assert pairs == {(1, 0), (2, 1)}


def test_join_indices_empty_sides():
    left_idx, right_idx, counts = join_indices([_bigint([])], [_bigint([1])])
    assert len(left_idx) == 0 and len(right_idx) == 0
    left_idx, right_idx, counts = join_indices([_bigint([1])], [_bigint([])])
    assert len(left_idx) == 0
    assert counts.tolist() == [0]


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.one_of(st.integers(0, 6), st.none()), max_size=25),
    st.lists(st.one_of(st.integers(0, 6), st.none()), max_size=25),
)
def test_join_indices_matches_nested_loop(left_vals, right_vals):
    """Property: the vectorised join equals the naive nested loop."""
    left_idx, right_idx, _ = join_indices(
        [_bigint(left_vals)], [_bigint(right_vals)]
    )
    got = sorted(zip(left_idx.tolist(), right_idx.tolist()))
    expected = sorted(
        (i, j)
        for i, lv in enumerate(left_vals)
        for j, rv in enumerate(right_vals)
        if lv is not None and rv is not None and lv == rv
    )
    assert got == expected


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(st.one_of(st.integers(0, 3), st.none()),
                  st.sampled_from(["x", "y"])),
        max_size=20,
    ),
    st.lists(
        st.tuples(st.one_of(st.integers(0, 3), st.none()),
                  st.sampled_from(["x", "y"])),
        max_size=20,
    ),
)
def test_multikey_join_matches_nested_loop(left_rows, right_rows):
    left = [_bigint([r[0] for r in left_rows]),
            _varchar([r[1] for r in left_rows])]
    right = [_bigint([r[0] for r in right_rows]),
             _varchar([r[1] for r in right_rows])]
    left_idx, right_idx, _ = join_indices(left, right)
    got = sorted(zip(left_idx.tolist(), right_idx.tolist()))
    expected = sorted(
        (i, j)
        for i, lrow in enumerate(left_rows)
        for j, rrow in enumerate(right_rows)
        if lrow[0] is not None and lrow == rrow
    )
    assert got == expected


def test_combined_codes_null_propagation():
    codes = _combined_codes([
        _bigint([1, None, 1]),
        _varchar(["a", "a", None]),
    ])
    assert codes[1] == -1 and codes[2] == -1
    assert codes[0] >= 0


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 4), st.integers(0, 4)),
                min_size=1, max_size=40))
def test_combined_codes_equality_property(rows):
    """Two rows share a combined code iff they are equal as tuples."""
    codes = _combined_codes([
        _bigint([r[0] for r in rows]),
        _bigint([r[1] for r in rows]),
    ])
    for i in range(len(rows)):
        for j in range(len(rows)):
            assert (codes[i] == codes[j]) == (rows[i] == rows[j])
