"""Direct tests of the physical-operator machinery."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.db.column import Column
from repro.db.plan.physical import join_indices, _combined_codes
from repro.db.types import DataType


def _bigint(values):
    return Column.from_values(DataType.BIGINT, values)


def _varchar(values):
    return Column.from_values(DataType.VARCHAR, values)


def test_join_indices_simple():
    left_idx, right_idx, counts = join_indices(
        [_bigint([1, 2, 3])], [_bigint([2, 2, 4])]
    )
    pairs = set(zip(left_idx.tolist(), right_idx.tolist()))
    assert pairs == {(1, 0), (1, 1)}
    assert counts.tolist() == [0, 2, 0]


def test_join_indices_nulls_never_match():
    left_idx, right_idx, _counts = join_indices(
        [_bigint([1, None, 3])], [_bigint([None, 1, None])]
    )
    pairs = set(zip(left_idx.tolist(), right_idx.tolist()))
    assert pairs == {(0, 1)}


def test_join_indices_multikey():
    left = [_varchar(["a", "a", "b"]), _bigint([1, 2, 1])]
    right = [_varchar(["a", "b", "a"]), _bigint([2, 1, 9])]
    left_idx, right_idx, _ = join_indices(left, right)
    pairs = set(zip(left_idx.tolist(), right_idx.tolist()))
    assert pairs == {(1, 0), (2, 1)}


def test_join_indices_empty_sides():
    left_idx, right_idx, counts = join_indices([_bigint([])], [_bigint([1])])
    assert len(left_idx) == 0 and len(right_idx) == 0
    left_idx, right_idx, counts = join_indices([_bigint([1])], [_bigint([])])
    assert len(left_idx) == 0
    assert counts.tolist() == [0]


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.one_of(st.integers(0, 6), st.none()), max_size=25),
    st.lists(st.one_of(st.integers(0, 6), st.none()), max_size=25),
)
def test_join_indices_matches_nested_loop(left_vals, right_vals):
    """Property: the vectorised join equals the naive nested loop."""
    left_idx, right_idx, _ = join_indices(
        [_bigint(left_vals)], [_bigint(right_vals)]
    )
    got = sorted(zip(left_idx.tolist(), right_idx.tolist()))
    expected = sorted(
        (i, j)
        for i, lv in enumerate(left_vals)
        for j, rv in enumerate(right_vals)
        if lv is not None and rv is not None and lv == rv
    )
    assert got == expected


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(st.one_of(st.integers(0, 3), st.none()),
                  st.sampled_from(["x", "y"])),
        max_size=20,
    ),
    st.lists(
        st.tuples(st.one_of(st.integers(0, 3), st.none()),
                  st.sampled_from(["x", "y"])),
        max_size=20,
    ),
)
def test_multikey_join_matches_nested_loop(left_rows, right_rows):
    left = [_bigint([r[0] for r in left_rows]),
            _varchar([r[1] for r in left_rows])]
    right = [_bigint([r[0] for r in right_rows]),
             _varchar([r[1] for r in right_rows])]
    left_idx, right_idx, _ = join_indices(left, right)
    got = sorted(zip(left_idx.tolist(), right_idx.tolist()))
    expected = sorted(
        (i, j)
        for i, lrow in enumerate(left_rows)
        for j, rrow in enumerate(right_rows)
        if lrow[0] is not None and lrow == rrow
    )
    assert got == expected


def test_combined_codes_null_is_a_group_key():
    """GROUP BY semantics: NULL is one key value, not a match-nothing
    sink — (NULL,'a') and (1,NULL) must stay distinct groups while the
    two (NULL,'a') rows share one."""
    codes = _combined_codes([
        _bigint([1, None, 1, None]),
        _varchar(["a", "a", None, "a"]),
    ])
    assert codes[1] == codes[3]
    assert len({int(codes[0]), int(codes[1]), int(codes[2])}) == 3


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.one_of(st.integers(0, 4), st.none()),
                          st.one_of(st.integers(0, 4), st.none())),
                min_size=1, max_size=40))
def test_combined_codes_equality_property(rows):
    """Two rows share a combined code iff they are equal as tuples —
    including tuples containing NULLs."""
    codes = _combined_codes([
        _bigint([r[0] for r in rows]),
        _bigint([r[1] for r in rows]),
    ])
    for i in range(len(rows)):
        for j in range(len(rows)):
            assert (codes[i] == codes[j]) == (rows[i] == rows[j])


# ---------------------------------------------------------------------------
# Streaming LIMIT ... OFFSET parity with the materialised path (ISSUE-5)
# ---------------------------------------------------------------------------


def _limit_db(rows=100):
    from repro.db.exec.engine import Database
    from repro.db.table import ColumnSpec, TableSchema

    db = Database()
    db.catalog.create_table(("t",), TableSchema(columns=[
        ColumnSpec("v", DataType.BIGINT),
        ColumnSpec("s", DataType.VARCHAR),
    ]))
    db.catalog.table(("t",)).append_pydict({
        "v": list(range(rows)),
        "s": [f"x{i % 7}" for i in range(rows)],
    })
    return db


def _column_bytes(column):
    """One column's payload as bytes (VARCHAR via its Python values)."""
    if column.values.dtype == object:
        return repr(column.to_pylist()).encode()
    return column.values.tobytes()


def _assert_stream_matches_materialised(db, sql, batch_sizes=(1, 3, 7, 64)):
    """Byte-identical parity: same rows, same per-column payload bytes."""
    materialised = db.query(sql)
    expected_rows = materialised.rows()
    expected_bytes = [_column_bytes(col) for col in materialised.columns]
    for batch_rows in batch_sizes:
        run = db.open_query(sql, batch_rows=batch_rows)
        rows = []
        per_column = [[] for _ in materialised.columns]
        for batch in run.batches():
            rows.extend(batch.rows())
            for i, col in enumerate(batch.columns):
                per_column[i].append(col)
        got_bytes = [
            _column_bytes(Column.concat(parts)) if parts
            else _column_bytes(materialised.columns[i].slice(0, 0))
            for i, parts in enumerate(per_column)
        ]
        assert rows == expected_rows, (sql, batch_rows)
        assert got_bytes == expected_bytes, (sql, batch_rows)
        assert run.rowcount == materialised.row_count


@pytest.mark.parametrize("limit,offset", [
    (5, 3),      # offset falls mid-batch for batch_rows > 3
    (40, 33),    # offset and limit both cross batch boundaries
    (5, 98),     # limit truncated by end of input
    (5, 100),    # offset == total rows
    (5, 120),    # offset beyond total rows
    (1, 99),     # exactly the last row
    (0, 10),     # LIMIT 0
    (100, 0),    # the whole table
])
def test_streaming_limit_offset_parity(limit, offset):
    db = _limit_db()
    _assert_stream_matches_materialised(
        db, f"SELECT v, s FROM t LIMIT {limit} OFFSET {offset}")


@pytest.mark.parametrize("limit,offset", [(5, 3), (5, 98), (3, 100)])
def test_streaming_limit_offset_parity_above_filter(limit, offset):
    # The filter yields irregular batch sizes, so the offset lands
    # mid-batch in ways plain scans never produce.
    db = _limit_db()
    _assert_stream_matches_materialised(
        db, f"SELECT v FROM t WHERE v % 2 = 0 LIMIT {limit} OFFSET {offset}")


def test_streaming_limit_offset_parity_above_breakers():
    # Sort and aggregate are pipeline breakers: LIMIT streams their
    # materialised output, which must slice identically.
    db = _limit_db()
    _assert_stream_matches_materialised(
        db, "SELECT v FROM t ORDER BY v DESC LIMIT 10 OFFSET 5")
    _assert_stream_matches_materialised(
        db, "SELECT s, count(*) FROM t GROUP BY s LIMIT 4 OFFSET 3")
    _assert_stream_matches_materialised(
        db, "SELECT s, count(*) FROM t GROUP BY s LIMIT 4 OFFSET 7")


def test_streaming_limit_stops_pulling_early():
    db = _limit_db(rows=10_000)
    run = db.open_query("SELECT v FROM t LIMIT 5 OFFSET 2", batch_rows=4)
    rows = [row for batch in run.batches() for row in batch.rows()]
    assert [r[0] for r in rows] == [2, 3, 4, 5, 6]
    # Early stop: nowhere near the full 10k rows were streamed.
    assert run.report.rows_out == 5


def test_cursor_limit_offset_fetch_parity():
    from repro.api import connect

    db = _limit_db()
    conn = connect(db)
    sql = "SELECT v FROM t LIMIT 7 OFFSET 96"  # truncated by end of input
    expected = db.query(sql).rows()
    cur = conn.cursor()
    cur.execute(sql, batch_rows=3)
    assert cur.fetchall() == expected
    assert cur.rowcount == len(expected) == 4
