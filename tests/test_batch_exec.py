"""Regression tests for the batch executor (ISSUE-6).

Covers the latent bug class the vectorised rewrite audit surfaced:

* ``PLimit.execute_batches`` with ``LIMIT 0`` used to pull (and pay for)
  one child batch before noticing it had nothing to emit.
* ``_combined_codes`` collapsed every row with *any* NULL key column into
  one group, so multi-key GROUP BY / DISTINCT merged ``(NULL, 1)`` and
  ``(NULL, 2)``.
* Mid-stream empty chunks (a predicate wiping out a whole batch) must
  propagate cleanly through every streaming operator.

Plus streaming-vs-materialised parity for the operators that gained
native ``execute_batches`` implementations: sort, distinct, join (inner,
left, cross) and aggregate.
"""

import pytest

from repro.db.exec.engine import Database
from repro.db.table import ColumnSpec, TableSchema
from repro.db.types import DataType


def _db_with(rows_by_table):
    db = Database()
    for name, (specs, data) in rows_by_table.items():
        db.catalog.create_table((name,), TableSchema(columns=specs))
        db.catalog.table((name,)).append_pydict(data)
    return db


def _nullable_db(rows=40):
    """A table whose key columns contain NULLs in several combinations."""
    groups = [None, "a", "b"]
    return _db_with({
        "t": (
            [ColumnSpec("g", DataType.VARCHAR),
             ColumnSpec("k", DataType.BIGINT),
             ColumnSpec("v", DataType.BIGINT)],
            {
                "g": [groups[i % 3] for i in range(rows)],
                "k": [None if i % 5 == 0 else i % 4 for i in range(rows)],
                "v": list(range(rows)),
            },
        )
    })


def _stream_rows(db, sql, batch_rows):
    run = db.open_query(sql, batch_rows=batch_rows)
    return [row for batch in run.batches() for row in batch.rows()], run


def _assert_parity(db, sql, batch_sizes=(1, 3, 7, 64)):
    expected = db.query(sql).rows()
    for batch_rows in batch_sizes:
        got, run = _stream_rows(db, sql, batch_rows)
        assert got == expected, (sql, batch_rows)
        assert run.report.rows_out == len(expected)


# ---------------------------------------------------------------------------
# LIMIT 0 must not pull a single child batch
# ---------------------------------------------------------------------------


def test_limit_zero_pulls_no_child_batches():
    db = _nullable_db()
    before = len(db.oplog.entries("scan"))
    rows, run = _stream_rows(db, "SELECT v FROM t LIMIT 0", batch_rows=4)
    assert rows == []
    assert run.report.rows_out == 0
    # The scan operator's generator must never have started: no scan
    # record was appended (the streamed-scan record lands in `finally`,
    # i.e. as soon as the generator runs at all).
    assert len(db.oplog.entries("scan")) == before


def test_limit_zero_matches_materialised():
    db = _nullable_db()
    _assert_parity(db, "SELECT v FROM t LIMIT 0 OFFSET 3")


# ---------------------------------------------------------------------------
# NULL grouping keys: (NULL, x) groups must stay distinct per x
# ---------------------------------------------------------------------------


def test_multikey_group_by_with_nulls():
    db = _nullable_db()
    rows = db.query(
        "SELECT g, k, COUNT(*), SUM(v) FROM t GROUP BY g, k"
    ).rows()
    # Reference: plain Python grouping over the same data.
    table = db.catalog.table(("t",))
    expected: dict = {}
    for g, k, v in zip(table.column("g").to_pylist(),
                       table.column("k").to_pylist(),
                       table.column("v").to_pylist()):
        st = expected.setdefault((g, k), [0, 0])
        st[0] += 1
        st[1] += v
    assert len(rows) == len(expected)
    for g, k, count, total in rows:
        assert expected[(g, k)] == [count, total], (g, k)


def test_multikey_group_by_null_groups_not_collapsed():
    db = _db_with({
        "p": (
            [ColumnSpec("a", DataType.BIGINT),
             ColumnSpec("b", DataType.BIGINT)],
            {"a": [None, None, 1, None], "b": [1, 2, 1, 1]},
        )
    })
    rows = sorted(
        db.query("SELECT a, b, COUNT(*) FROM p GROUP BY a, b").rows(),
        key=repr,
    )
    # (NULL,1) x2, (NULL,2) x1, (1,1) x1 — three distinct groups.
    assert sorted(rows, key=repr) == sorted(
        [(None, 1, 2), (None, 2, 1), (1, 1, 1)], key=repr)


def test_multikey_distinct_with_nulls():
    db = _db_with({
        "p": (
            [ColumnSpec("a", DataType.BIGINT),
             ColumnSpec("b", DataType.BIGINT)],
            {"a": [None, None, 1, None, None], "b": [1, 2, 1, 1, 2]},
        )
    })
    rows = db.query("SELECT DISTINCT a, b FROM p").rows()
    assert rows == [(None, 1), (None, 2), (1, 1)]  # first-occurrence order


def test_null_first_group_order_single_key():
    db = _db_with({
        "p": (
            [ColumnSpec("a", DataType.BIGINT)],
            {"a": [3, None, 1, 3, None]},
        )
    })
    rows = db.query("SELECT a, COUNT(*) FROM p GROUP BY a").rows()
    assert rows == [(None, 2), (1, 1), (3, 2)]


# ---------------------------------------------------------------------------
# Mid-stream empty chunks propagate through every streaming operator
# ---------------------------------------------------------------------------


def _banded_db(rows=100):
    """Predicate `v < 10 OR v >= 90` empties every middle batch."""
    return _db_with({
        "t": (
            [ColumnSpec("v", DataType.BIGINT),
             ColumnSpec("s", DataType.VARCHAR)],
            {"v": list(range(rows)), "s": [f"x{i % 7}" for i in range(rows)]},
        )
    })


@pytest.mark.parametrize("sql", [
    "SELECT v FROM t WHERE v < 10 OR v >= 90",
    "SELECT v FROM t WHERE v < 10 OR v >= 90 ORDER BY v DESC",
    "SELECT DISTINCT s FROM t WHERE v < 10 OR v >= 90",
    "SELECT s, COUNT(*), SUM(v) FROM t WHERE v < 10 OR v >= 90 GROUP BY s",
    "SELECT v FROM t WHERE v < 10 OR v >= 90 LIMIT 7 OFFSET 8",
    "SELECT s, MIN(v), MAX(v) FROM t WHERE v >= 200 GROUP BY s",  # empties all
    "SELECT COUNT(*) FROM t WHERE v >= 200",  # global agg over empty stream
])
def test_empty_chunk_propagation(sql):
    _assert_parity(_banded_db(), sql, batch_sizes=(1, 4, 16, 256))


# ---------------------------------------------------------------------------
# Streaming parity for the batch-native pipeline breakers
# ---------------------------------------------------------------------------


def _join_db():
    return _db_with({
        "f": (
            [ColumnSpec("fk", DataType.BIGINT),
             ColumnSpec("fv", DataType.VARCHAR)],
            {"fk": [i % 6 if i % 11 else None for i in range(50)],
             "fv": [f"f{i}" for i in range(50)]},
        ),
        "d": (
            [ColumnSpec("dk", DataType.BIGINT),
             ColumnSpec("dv", DataType.BIGINT)],
            {"dk": [i % 4 if i % 7 else None for i in range(30)],
             "dv": list(range(30))},
        ),
    })


@pytest.mark.parametrize("sql", [
    "SELECT fv, dv FROM f, d WHERE fk = dk",
    "SELECT fv, dv FROM f JOIN d ON fk = dk",
    "SELECT fv, dv FROM f LEFT JOIN d ON fk = dk",
    "SELECT fv, dv FROM f LEFT JOIN d ON fk = dk AND dv > 10",
    "SELECT fv, dv FROM f JOIN d ON fk = dk AND dv % 2 = 0",
    "SELECT fk, COUNT(*), SUM(dv) FROM f, d WHERE fk = dk GROUP BY fk",
])
def test_streaming_join_parity(sql):
    _assert_parity(_join_db(), sql, batch_sizes=(1, 3, 8, 64))


def test_streaming_cross_join_parity():
    db = _db_with({
        "a": ([ColumnSpec("x", DataType.BIGINT)], {"x": list(range(9))}),
        "b": ([ColumnSpec("y", DataType.BIGINT)], {"y": [10, 20, 30]}),
    })
    _assert_parity(db, "SELECT x, y FROM a, b", batch_sizes=(1, 2, 4, 64))


def test_streaming_sort_distinct_parity():
    db = _banded_db()
    _assert_parity(db, "SELECT DISTINCT s FROM t ORDER BY s DESC",
                   batch_sizes=(1, 4, 16))
    _assert_parity(db, "SELECT v, s FROM t ORDER BY s, v DESC",
                   batch_sizes=(1, 4, 16))


def test_streaming_aggregate_recycler_parity():
    # The streamed aggregate must hit the recycler admitted by the
    # materialised run (and vice versa), not recompute silently.
    db = _banded_db()
    sql = "SELECT s, COUNT(*) FROM t GROUP BY s"
    expected = db.query(sql).rows()  # admits the aggregate
    got, run = _stream_rows(db, sql, batch_rows=8)
    assert got == expected
    assert any(e.get("op") == "recycler_hit" for e in run.trace)


def test_streaming_aggregate_admits_to_recycler():
    db = _banded_db()
    sql = "SELECT s, SUM(v) FROM t GROUP BY s"
    got, _run = _stream_rows(db, sql, batch_rows=8)  # streamed first
    expected = db.query(sql)  # must be served from the recycler
    assert expected.rows() == got
    assert any(e.get("op") == "recycler_hit" for e in db.last_trace)
