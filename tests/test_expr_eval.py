"""Expression evaluation details: three-valued logic, functions, casts."""

import pytest

from repro.db import Database


@pytest.fixture()
def db():
    database = Database()
    database.execute("CREATE TABLE v (a BIGINT, b BIGINT, s VARCHAR, "
                     "at TIMESTAMP)")
    database.execute("""INSERT INTO v VALUES
        (1, 10, 'alpha', '2010-01-12T22:00:00'),
        (NULL, 20, 'Beta', '2010-06-30T01:02:03'),
        (3, NULL, 'gamma', NULL)""")
    return database


def test_kleene_and_or(db):
    # NULL AND FALSE = FALSE (row survives NOT ...), NULL AND TRUE = NULL.
    rows = db.query(
        "SELECT COUNT(*) FROM v WHERE a > 0 AND b > 0").scalar()
    assert rows == 1
    rows = db.query(
        "SELECT COUNT(*) FROM v WHERE a > 0 OR b > 0").scalar()
    assert rows == 3  # (1,10) true; (NULL,20) true via OR; (3,NULL) true


def test_not_of_null_is_null(db):
    assert db.query(
        "SELECT COUNT(*) FROM v WHERE NOT (a > 0)").scalar() == 0


def test_arithmetic_null_propagation(db):
    rows = db.query("SELECT a + b FROM v ORDER BY at").rows()
    assert rows[0] == (11,)
    assert rows[1] == (None,)


def test_modulo_and_unary_minus(db):
    assert db.query("SELECT -a % 2 FROM v WHERE a = 3").scalar() == 1
    assert db.query("SELECT b % 7 FROM v WHERE b = 20").scalar() == 6


def test_timestamp_arithmetic(db):
    # timestamp - timestamp is BIGINT microseconds
    diff = db.query(
        "SELECT MAX(at) - MIN(at) FROM v WHERE at IS NOT NULL").scalar()
    assert diff > 0
    shifted = db.query(
        "SELECT at + 1000000 FROM v WHERE s = 'alpha'").scalar()
    base = db.query("SELECT at FROM v WHERE s = 'alpha'").scalar()
    assert shifted == base + 1_000_000


def test_timestamp_parts(db):
    row = db.query(
        "SELECT YEAR(at), MONTH(at), DAY(at), HOUR(at), MINUTE(at), "
        "SECOND(at) FROM v WHERE s = 'Beta'").first()
    assert row == (2010, 6, 30, 1, 2, 3)


def test_epoch_us(db):
    value = db.query(
        "SELECT EPOCH_US(at) FROM v WHERE s = 'alpha'").scalar()
    from repro.util.timefmt import from_ymd

    assert value == from_ymd(2010, 1, 12, 22)


def test_string_functions(db):
    row = db.query(
        "SELECT LOWER(s), UPPER(s), LENGTH(s), SUBSTR(s, 2, 3) "
        "FROM v WHERE s = 'Beta'").first()
    assert row == ("beta", "BETA", 4, "eta")


def test_trim_and_concat(db):
    assert db.query("SELECT TRIM('  x  ') FROM v LIMIT 1").scalar() == "x"
    assert db.query(
        "SELECT CONCAT(s, '-', s) FROM v WHERE s = 'gamma'").scalar() == \
        "gamma-gamma"


def test_math_functions(db):
    row = db.query(
        "SELECT SQRT(CAST(b AS DOUBLE)), FLOOR(1.7), CEIL(1.2), "
        "ROUND(1.2345, 2) FROM v WHERE b = 10").first()
    assert row[0] == pytest.approx(10 ** 0.5)
    assert row[1:] == (1.0, 2.0, 1.23)


def test_ln_exp_log10(db):
    row = db.query(
        "SELECT LN(EXP(2.0)), LOG10(100.0) FROM v LIMIT 1").first()
    assert row[0] == pytest.approx(2.0)
    assert row[1] == pytest.approx(2.0)


def test_greatest_least(db):
    row = db.query(
        "SELECT GREATEST(a, 2), LEAST(b, 15) FROM v WHERE a = 1").first()
    assert row == (2, 10)


def test_cast_varieties(db):
    assert db.query(
        "SELECT CAST('42' AS BIGINT) FROM v LIMIT 1").scalar() == 42
    assert db.query(
        "SELECT CAST(1 AS DOUBLE) / 2 FROM v LIMIT 1").scalar() == 0.5
    assert db.query(
        "SELECT CAST('2010-01-12T00:00:00' AS TIMESTAMP) FROM v LIMIT 1"
    ).scalar() == 1263254400000000
    text = db.query(
        "SELECT CAST(at AS VARCHAR) FROM v WHERE s = 'alpha'").scalar()
    assert text.startswith("2010-01-12T22")


def test_like_wildcards(db):
    rows = db.query("SELECT s FROM v WHERE s LIKE '%a'").rows()
    assert set(r[0] for r in rows) == {"alpha", "Beta", "gamma"}
    rows = db.query("SELECT s FROM v WHERE s LIKE 'g_mma'").rows()
    assert rows == [("gamma",)]
    rows = db.query("SELECT s FROM v WHERE s NOT LIKE '%a%'").rows()
    assert rows == []


def test_in_list_with_null_operand(db):
    rows = db.query("SELECT COUNT(*) FROM v WHERE a IN (1, 3)").scalar()
    assert rows == 2


def test_between_on_timestamps(db):
    count = db.query(
        "SELECT COUNT(*) FROM v WHERE at BETWEEN '2010-01-01T00:00:00' "
        "AND '2010-02-01T00:00:00'").scalar()
    assert count == 1


def test_unknown_function_rejected(db):
    from repro.errors import BindError

    with pytest.raises(BindError):
        db.query("SELECT FROBNICATE(a) FROM v")


def test_function_arity_checked(db):
    from repro.errors import BindError

    with pytest.raises(BindError):
        db.query("SELECT ABS(a, b) FROM v")


def test_aggregate_in_where_rejected(db):
    from repro.errors import BindError

    with pytest.raises(BindError):
        db.query("SELECT a FROM v WHERE SUM(a) > 1")
