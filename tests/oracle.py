"""Differential-testing oracle: one query, three executions, zero drift.

:func:`run_differential` executes a SELECT through

* the vectorised materialised path (``Database.query``),
* the streamed batch path (``Database.open_query``), and
* the row-at-a-time reference interpreter (``Database.query_rowpath``),

and asserts the three results are *byte-identical*: same values, same
row order, same null masks, same float bits, and agreeing ``QueryReport``
row counts.  The rowpath interpreter is deliberately independent code
(scalar expression evaluation, dict-based joins and grouping, no
recycler, no zone maps), so any divergence pinpoints a bug in the
vectorised executor — or a genuine semantic disagreement worth a test.

Row order is compared strictly: all three paths are deterministic for a
fixed plan (hash-free joins and grouping, stable sorts), so "order where
deterministic" is simply "always" here.

Plain module, not a plugin: pytest puts ``tests/`` on ``sys.path``, so
suites import it directly (``from oracle import run_differential``) or
via the ``differential_oracle`` fixture in ``conftest.py``.
"""

import math
import struct

from repro.db.column import Column


def _canon_value(value):
    """Canonical comparable token; floats compare by their exact bits."""
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"  # any NaN payload counts as the one NaN
        return struct.pack("<d", value)
    return value


def column_fingerprint(column):
    """``(null mask, canonical payload)`` for one result column."""
    values = column.to_pylist()
    return (
        tuple(v is None for v in values),
        tuple(None if v is None else _canon_value(v) for v in values),
    )


def _fingerprint(columns):
    return [column_fingerprint(col) for col in columns]


def _diff_message(label, sql, got, expected):
    lines = [f"{label} diverges from the vectorised result on {sql!r}"]
    for i, (g, e) in enumerate(zip(got, expected)):
        if g != e:
            lines.append(f"  column {i}: nulls/payload differ")
            lines.append(f"    {label}:  nulls={g[0][:8]}... values={g[1][:4]}...")
            lines.append(f"    vector: nulls={e[0][:8]}... values={e[1][:4]}...")
    return "\n".join(lines)


def run_differential(db, sql, params=None, stream_batch_rows=(64,)):
    """Run ``sql`` through all three executors and demand identity.

    Returns the vectorised :class:`Result` so callers can chain further
    assertions without re-executing.
    """
    vec = db.query(sql, params)
    vec_report = db.last_report
    vec_fp = _fingerprint(vec.columns)
    assert vec_report.rows_out == vec.row_count

    row_result, row_report, _trace = db.query_rowpath(sql, params)
    assert row_report.rows_out == vec.row_count, (
        f"rowpath row count {row_report.rows_out} != vectorised "
        f"{vec.row_count} on {sql!r}"
    )
    row_fp = _fingerprint(row_result.columns)
    assert row_fp == vec_fp, _diff_message("rowpath", sql, row_fp, vec_fp)

    for batch_rows in stream_batch_rows:
        run = db.open_query(sql, params, batch_rows=batch_rows)
        parts = [[] for _ in vec.columns]
        for batch in run.batches():
            for i, col in enumerate(batch.columns):
                parts[i].append(col)
        streamed_fp = [
            column_fingerprint(Column.concat(p)) if p else ((), ())
            for p in parts
        ]
        assert streamed_fp == vec_fp, _diff_message(
            f"stream[{batch_rows}]", sql, streamed_fp, vec_fp)
        assert run.report.rows_out == vec.row_count
    return vec
