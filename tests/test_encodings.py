"""Tests for the payload-encoding registry."""

import numpy as np
import pytest

from repro.errors import UnsupportedEncodingError
from repro.mseed import encodings


@pytest.mark.parametrize("code,dtype", [
    (encodings.ENC_INT16, np.int32),
    (encodings.ENC_INT32, np.int32),
    (encodings.ENC_FLOAT32, np.float32),
    (encodings.ENC_FLOAT64, np.float64),
])
def test_plain_roundtrip(code, dtype):
    samples = np.array([-5, 0, 7, 1000, -999], dtype=np.int64)
    payload, count = encodings.encode_payload(samples, code, 4096)
    assert count == len(samples)
    decoded = encodings.decode_payload(payload, count, code)
    assert decoded.dtype == dtype
    assert np.allclose(decoded, samples)


def test_steim_codes_route_to_steim():
    samples = np.arange(100, dtype=np.int32)
    payload, count = encodings.encode_payload(
        samples, encodings.ENC_STEIM2, 448
    )
    decoded = encodings.decode_payload(payload, count, encodings.ENC_STEIM2)
    assert np.array_equal(decoded, samples[:count])


def test_capacity_limits_plain():
    samples = np.arange(100, dtype=np.int64)
    payload, count = encodings.encode_payload(samples, encodings.ENC_INT32, 40)
    assert count == 10
    assert len(payload) == 40


def test_int16_range_check():
    with pytest.raises(UnsupportedEncodingError):
        encodings.encode_payload(np.array([70_000]), encodings.ENC_INT16, 100)


def test_unknown_encoding_rejected():
    with pytest.raises(UnsupportedEncodingError):
        encodings.decode_payload(b"\x00" * 8, 1, 99)
    with pytest.raises(UnsupportedEncodingError):
        encodings.encode_payload(np.array([1]), 99, 100)


def test_short_payload_rejected():
    with pytest.raises(UnsupportedEncodingError):
        encodings.decode_payload(b"\x00\x01", 5, encodings.ENC_INT32)


def test_tiny_capacity_rejected():
    with pytest.raises(UnsupportedEncodingError):
        encodings.encode_payload(np.array([1]), encodings.ENC_STEIM2, 32)
    with pytest.raises(UnsupportedEncodingError):
        encodings.encode_payload(np.array([1]), encodings.ENC_INT32, 2)


def test_encoding_names():
    assert encodings.encoding_name(encodings.ENC_STEIM2) == "STEIM2"
    assert encodings.encoding_name(1234) == "UNKNOWN(1234)"
