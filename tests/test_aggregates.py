"""Aggregate execution tests, including nulls, DISTINCT and empty inputs."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.db import Database


@pytest.fixture()
def db():
    database = Database()
    database.execute(
        "CREATE TABLE m (grp VARCHAR, val BIGINT, weight DOUBLE)")
    database.execute("""INSERT INTO m VALUES
        ('a', 1, 1.0), ('a', 2, 2.0), ('a', NULL, 3.0),
        ('b', 5, 1.5), ('b', 5, 2.5), (NULL, 7, 0.5)""")
    return database


def test_global_aggregates(db):
    row = db.query(
        "SELECT COUNT(*), COUNT(val), SUM(val), AVG(val), MIN(val), MAX(val) "
        "FROM m").first()
    assert row == (6, 5, 20, 4.0, 1, 7)


def test_group_by_with_nulls_as_group(db):
    rows = db.query(
        "SELECT grp, COUNT(*) FROM m GROUP BY grp ORDER BY grp").rows()
    # NULL group sorts last (NULLS LAST ordering).
    assert rows == [("a", 3), ("b", 2), (None, 1)]


def test_aggregates_skip_nulls(db):
    rows = db.query(
        "SELECT grp, COUNT(val), AVG(val) FROM m GROUP BY grp "
        "ORDER BY grp").rows()
    assert rows[0] == ("a", 2, 1.5)


def test_min_max_varchar(db):
    row = db.query("SELECT MIN(grp), MAX(grp) FROM m").first()
    assert row == ("a", "b")


def test_count_distinct_and_sum_distinct(db):
    row = db.query(
        "SELECT COUNT(DISTINCT val), SUM(DISTINCT val) FROM m").first()
    assert row == (4, 15)  # 1, 2, 5, 7


def test_stddev_and_median(db):
    row = db.query(
        "SELECT MEDIAN(val), STDDEV_SAMP(val) FROM m WHERE grp = 'b'"
    ).first()
    assert row[0] == 5.0
    assert row[1] == 0.0
    spread = db.query("SELECT STDDEV_SAMP(val) FROM m").scalar()
    assert spread == pytest.approx(np.std([1, 2, 5, 5, 7], ddof=1))


def test_stddev_single_row_is_null(db):
    value = db.query(
        "SELECT STDDEV_SAMP(val) FROM m WHERE val = 7").scalar()
    assert value is None


def test_empty_input_global(db):
    row = db.query(
        "SELECT COUNT(*), SUM(val), MIN(val), AVG(val) FROM m "
        "WHERE grp = 'zzz'").first()
    assert row == (0, None, None, None)


def test_empty_input_grouped(db):
    rows = db.query(
        "SELECT grp, COUNT(*) FROM m WHERE grp = 'zzz' GROUP BY grp").rows()
    assert rows == []


def test_having(db):
    rows = db.query(
        "SELECT grp, COUNT(*) AS n FROM m GROUP BY grp "
        "HAVING COUNT(*) > 1 ORDER BY grp").rows()
    assert rows == [("a", 3), ("b", 2)]


def test_group_by_expression(db):
    rows = db.query(
        "SELECT val % 2, COUNT(*) FROM m WHERE val IS NOT NULL "
        "GROUP BY val % 2 ORDER BY 1").rows()
    assert rows == [(0, 1), (1, 4)]


def test_aggregate_of_expression(db):
    value = db.query("SELECT SUM(val * 2) FROM m").scalar()
    assert value == 40


def test_expression_over_aggregates(db):
    value = db.query("SELECT MAX(val) - MIN(val) FROM m").scalar()
    assert value == 6


def test_order_by_aggregate(db):
    rows = db.query(
        "SELECT grp, SUM(weight) FROM m GROUP BY grp "
        "ORDER BY SUM(weight) DESC").rows()
    assert rows[0][0] == "a"


def test_non_grouped_column_rejected(db):
    from repro.errors import BindError

    with pytest.raises(BindError):
        db.query("SELECT grp, val FROM m GROUP BY grp")
    with pytest.raises(BindError):
        db.query("SELECT val, COUNT(*) FROM m")


def test_having_without_group_rejected(db):
    from repro.errors import BindError

    with pytest.raises(BindError):
        db.query("SELECT val FROM m HAVING val > 1")


@settings(max_examples=40, deadline=None)
@given(st.lists(
    st.tuples(st.sampled_from(["x", "y", "z"]),
              st.integers(-1000, 1000)),
    min_size=1, max_size=60,
))
def test_grouped_sum_matches_python(rows):
    """Property: grouped SUM/COUNT/MIN/MAX agree with a Python reference."""
    db = Database(enable_recycler=False)
    db.execute("CREATE TABLE t (g VARCHAR, v BIGINT)")
    values = ", ".join(f"('{g}', {v})" for g, v in rows)
    db.execute(f"INSERT INTO t VALUES {values}")
    got = db.query(
        "SELECT g, SUM(v), COUNT(*), MIN(v), MAX(v) FROM t "
        "GROUP BY g ORDER BY g").rows()
    expected = {}
    for g, v in rows:
        expected.setdefault(g, []).append(v)
    assert got == [
        (g, sum(vs), len(vs), min(vs), max(vs))
        for g, vs in sorted(expected.items())
    ]
