"""Property-based fuzzing of the vectorised expression evaluator.

Hypothesis generates random typed columns (with NULLs and NaNs) and
random expression trees over them; every generated query runs through
the differential oracle (``tests/oracle.py``), which demands the
vectorised, streamed and row-at-a-time executors agree bit-for-bit.
The scalar interpreter in ``repro.db.exec.rowpath`` is the reference
semantics — it shares no evaluation code with ``repro.db.expr``.

Deterministic edge cases ride along: the empty batch, the all-NULL
column, the single-row batch, and LIMIT/OFFSET landing exactly on a
batch boundary.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from oracle import run_differential
from repro.db.exec.engine import Database
from repro.db.table import ColumnSpec, TableSchema
from repro.db.types import DataType

pytestmark = pytest.mark.oracle


def _make_db(i_vals, d_vals, s_vals):
    rows = max(len(i_vals), len(d_vals), len(s_vals))

    def pad(vals):
        return list(vals) + [None] * (rows - len(vals))

    db = Database()
    db.catalog.create_table(("t",), TableSchema(columns=[
        ColumnSpec("i", DataType.BIGINT),
        ColumnSpec("d", DataType.DOUBLE),
        ColumnSpec("s", DataType.VARCHAR),
    ]))
    if rows:
        db.catalog.table(("t",)).append_pydict({
            "i": pad(i_vals), "d": pad(d_vals), "s": pad(s_vals),
        })
    return db


def _default_db(rows=97):  # prime: misaligns with every batch size
    return _make_db(
        [None if i % 11 == 0 else (i % 13) - 6 for i in range(rows)],
        [None if i % 7 == 0 else
         float("nan") if i % 19 == 0 else (i - rows / 2) / 3.0
         for i in range(rows)],
        [None if i % 5 == 0 else f"x{i % 9}" for i in range(rows)],
    )


# -- expression grammar ------------------------------------------------------

_NUM_LEAF = st.sampled_from(
    ["i", "d", "0", "2", "-3", "7", "0.5", "-1.5", "i", "d"])

_NUMERIC = st.recursive(
    _NUM_LEAF,
    lambda child: st.builds(
        lambda a, op, b: f"({a} {op} {b})",
        child, st.sampled_from(["+", "-", "*", "/"]), child),
    max_leaves=5,
)

_PRED_LEAF = st.one_of(
    st.builds(lambda a, op, b: f"({a} {op} {b})",
              _NUMERIC, st.sampled_from(["=", "<>", "<", "<=", ">", ">="]),
              _NUMERIC),
    st.sampled_from([
        "s LIKE 'x%'", "s LIKE '%1'", "s LIKE 'x_'", "s = 'x3'",
        "i IS NULL", "d IS NOT NULL", "s IS NULL",
        "i BETWEEN -2 AND 3", "d NOT BETWEEN 0.0 AND 5.5",
        "i IN (1, 2, 5)", "s IN ('x1', 'x4', 'x7')",
    ]),
)

_PREDICATE = st.recursive(
    _PRED_LEAF,
    lambda child: st.one_of(
        st.builds(lambda a, b: f"({a} AND {b})", child, child),
        st.builds(lambda a, b: f"({a} OR {b})", child, child),
        st.builds(lambda a: f"(NOT {a})", child),
    ),
    max_leaves=4,
)

_FUZZ_SETTINGS = dict(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture,
                           HealthCheck.too_slow],
)


@settings(**_FUZZ_SETTINGS)
@given(expr=_NUMERIC, pred=_PREDICATE)
def test_fuzz_expressions_over_fixed_columns(expr, pred):
    db = _default_db()
    run_differential(db, f"SELECT i, {expr} FROM t WHERE {pred}",
                     stream_batch_rows=(1, 16))


@settings(**_FUZZ_SETTINGS)
@given(pred=_PREDICATE, num=_NUMERIC)
def test_fuzz_case_and_cast(pred, num):
    db = _default_db()
    sql = (f"SELECT CASE WHEN {pred} THEN {num} ELSE 0 - ({num}) END, "
           f"CAST({num} AS VARCHAR) FROM t")
    run_differential(db, sql, stream_batch_rows=(16,))


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    i_vals=st.lists(st.one_of(st.none(),
                              st.integers(-1_000_000, 1_000_000)),
                    max_size=40),
    d_vals=st.lists(st.one_of(st.none(), st.just(float("nan")),
                              st.floats(allow_nan=False,
                                        allow_infinity=False,
                                        width=32)),
                    max_size=40),
    s_vals=st.lists(st.one_of(st.none(),
                              st.text(alphabet="ax1%_", max_size=4)),
                    max_size=40),
    pred=_PREDICATE,
)
def test_fuzz_random_columns(i_vals, d_vals, s_vals, pred):
    """Random data *and* random predicate: columns of uneven NULL mix,
    NaNs, LIKE metacharacters as data."""
    db = _make_db(i_vals, d_vals, s_vals)
    run_differential(db, f"SELECT i, d, s FROM t WHERE {pred}",
                     stream_batch_rows=(7,))


# -- deterministic edges -----------------------------------------------------


EDGE_EXPRS = [
    "i + d", "d / i", "i % 4", "-i", "NOT (d > 0)",
    "CASE WHEN i IS NULL THEN 'n' ELSE s END",
    "s LIKE '%x%'", "i BETWEEN d AND d + 10",
]


@pytest.mark.parametrize("expr", EDGE_EXPRS)
def test_empty_batch(expr):
    db = _make_db([], [], [])
    result = run_differential(db, f"SELECT {expr} FROM t",
                              stream_batch_rows=(1, 16))
    assert result.row_count == 0


@pytest.mark.parametrize("expr", EDGE_EXPRS)
def test_all_null_columns(expr):
    db = _make_db([None] * 20, [None] * 20, [None] * 20)
    run_differential(db, f"SELECT {expr} FROM t", stream_batch_rows=(4,))


@pytest.mark.parametrize("expr", EDGE_EXPRS)
def test_single_row_batch(expr):
    db = _make_db([3], [1.5], ["x1"])
    run_differential(db, f"SELECT {expr} FROM t", stream_batch_rows=(1,))


@pytest.mark.parametrize("agg", [
    "SUM(d)", "AVG(d)", "STDDEV_SAMP(d)", "SUM(d * d)", "AVG(d / 7)",
])
@pytest.mark.parametrize("group", ["", " GROUP BY s ORDER BY s"])
def test_inexact_float_aggregates_bit_identical(agg, group):
    """Float summation is order- and algorithm-sensitive: values like
    i/3.0 don't sum exactly, so a reference that accumulated
    sequentially would drift ulps away from numpy's pairwise reduction.
    The oracle demands the exact bits, so the reduction algorithm is
    pinned as part of the semantics (caught live by a verify probe)."""
    db = _default_db(rows=500)  # groups far beyond numpy's pairwise block
    run_differential(db, f"SELECT {agg} FROM t{group}",
                     stream_batch_rows=(64,))


@pytest.mark.parametrize("limit,offset", [
    (10, 10),   # both exactly one batch
    (10, 0),    # limit == batch size
    (20, 10),   # spans two whole batches
    (0, 10),    # LIMIT 0 at a boundary
    (10, 90),   # tail clipped at row 97
    (10, 97),   # offset == row count
])
def test_limit_offset_on_batch_boundary(limit, offset):
    db = _default_db(rows=97)
    run_differential(
        db, f"SELECT i, d, s FROM t LIMIT {limit} OFFSET {offset}",
        stream_batch_rows=(10,))
