"""Unit and property tests for the Steim-1/Steim-2 codecs."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SteimError
from repro.mseed import steim


def _roundtrip(samples, level, frames=7):
    encode = steim.encode_steim1 if level == 1 else steim.encode_steim2
    decode = steim.decode_steim1 if level == 1 else steim.decode_steim2
    position = 0
    out = []
    previous = None
    while position < len(samples):
        payload, count = encode(samples[position:], frames, previous)
        assert count > 0
        out.append(decode(payload, count))
        previous = int(samples[position + count - 1])
        position += count
    return np.concatenate(out)


@pytest.mark.parametrize("level", [1, 2])
def test_constant_series(level):
    samples = np.full(100, 42, dtype=np.int32)
    assert np.array_equal(_roundtrip(samples, level), samples)


@pytest.mark.parametrize("level", [1, 2])
def test_alternating_small_diffs(level):
    samples = np.cumsum(np.tile([1, -1, 2, -2], 200)).astype(np.int32)
    assert np.array_equal(_roundtrip(samples, level), samples)


@pytest.mark.parametrize("level", [1, 2])
def test_large_jumps(level):
    samples = np.array([0, 1 << 20, -(1 << 20), 7, 8, 9, 1 << 24],
                       dtype=np.int32)
    assert np.array_equal(_roundtrip(samples, level), samples)


def test_single_sample():
    payload, count = steim.encode_steim2(np.array([123], dtype=np.int32), 7)
    assert count == 1
    assert steim.decode_steim2(payload, 1).tolist() == [123]


def test_payload_is_frame_aligned():
    payload, count = steim.encode_steim2(np.arange(50, dtype=np.int32), 7)
    assert len(payload) % steim.FRAME_BYTES == 0


def test_partial_encode_continues_with_previous():
    rng = np.random.default_rng(1)
    samples = np.cumsum(rng.integers(-100, 100, 4000)).astype(np.int32)
    # One frame holds far fewer than 4000 samples: forces continuation.
    assert np.array_equal(_roundtrip(samples, 2, frames=1), samples)


def test_steim2_rejects_out_of_range_diff():
    samples = np.array([0, (1 << 30)], dtype=np.int64).astype(np.int32)
    # diff is -2^30 after int32 wraparound; construct explicitly instead:
    samples = np.array([-(1 << 29) - 1, (1 << 29)], dtype=np.int32)
    with pytest.raises(SteimError):
        steim.encode_steim2(samples, 7)


def test_steim1_handles_full_32bit_diffs():
    samples = np.array([-(1 << 30), (1 << 30) - 1], dtype=np.int32)
    assert np.array_equal(_roundtrip(samples, 1), samples)


def test_encode_empty_rejected():
    with pytest.raises(SteimError):
        steim.encode_steim2(np.array([], dtype=np.int32), 7)


def test_decode_rejects_unaligned_payload():
    with pytest.raises(SteimError):
        steim.decode_steim2(b"\x00" * 63, 1)


def test_decode_rejects_short_sample_count():
    payload, count = steim.encode_steim2(np.arange(10, dtype=np.int32), 7)
    with pytest.raises(SteimError):
        steim.decode_steim2(payload, count + 500)


def test_decode_detects_integration_mismatch():
    payload, count = steim.encode_steim2(np.arange(20, dtype=np.int32), 7)
    corrupted = bytearray(payload)
    corrupted[8:12] = (999999).to_bytes(4, "big")  # clobber XN (frame 0 word 2)
    with pytest.raises(SteimError):
        steim.decode_steim2(bytes(corrupted), count)
    # ... unless verification is disabled.
    steim.decode_steim2(bytes(corrupted), count, check_integration=False)


def test_decode_zero_samples():
    assert steim.decode_steim2(b"", 0).size == 0


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(min_value=-(1 << 28), max_value=(1 << 28) - 1),
             min_size=1, max_size=500),
    st.sampled_from([1, 2]),
)
def test_roundtrip_property(diffs, level):
    """Any diff sequence within Steim-2 range round-trips exactly."""
    samples = np.cumsum(np.array(diffs, dtype=np.int64))
    samples = np.clip(samples, -(1 << 30), (1 << 30) - 1).astype(np.int32)
    assert np.array_equal(_roundtrip(samples, level), samples)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1))
def test_single_value_property(value):
    samples = np.array([value], dtype=np.int32)
    for level in (1, 2):
        assert np.array_equal(_roundtrip(samples, level), samples)


def test_compression_ratio_realistic_waveform():
    """Steim-2 should compress a realistic seismic trace well below 4 B/sample."""
    rng = np.random.default_rng(5)
    samples = np.cumsum(rng.integers(-30, 30, 10_000)).astype(np.int32)
    position = 0
    total_bytes = 0
    while position < len(samples):
        payload, count = steim.encode_steim2(samples[position:], 7)
        total_bytes += len(payload)
        position += count
    assert total_bytes / len(samples) < 2.5
