"""Remote clients: differential oracle across the wire, params, asyncio.

The headline check extends the repo's differential-testing oracle over
TCP: every query of the E8 analytical suite must come back from a
remote client *bit-identical* — same values, same row order, same null
masks, same float bits — to an in-process ``wh.connect()`` cursor, and
with an agreeing ``QueryReport``.
"""

import asyncio
import struct

import pytest
from oracle import column_fingerprint

from repro.api.cursor import Cursor
from repro.db.column import Column
from repro.errors import RemoteQueryError
from repro.net import connect_tcp, connect_tcp_async
from repro.seismology.queries import analytical_suite
from repro.seismology.warehouse import SeismicWarehouse

TOKEN = "client-suite-secret"


@pytest.fixture(scope="module")
def served(demo_repo):
    wh = SeismicWarehouse(demo_repo.root, mode="lazy")
    svc = wh.serve(max_workers=4, tcp_port=0, auth_tokens=[TOKEN])
    yield wh, svc
    svc.close()
    wh.close()


@pytest.fixture()
def remote(served):
    _wh, svc = served
    conn = connect_tcp("127.0.0.1", svc.tcp_port, token=TOKEN)
    yield conn
    conn.close()


def _remote_fingerprints(conn, sql, params=None, batch_rows=64):
    """Column fingerprints + report of one remote streamed execution."""
    run = conn._run(sql, params, batch_rows)
    parts = [[] for _ in run.names]
    for batch in run.batches():
        for i, col in enumerate(batch.columns):
            parts[i].append(col)
    fps = [column_fingerprint(Column.concat(p)) if p else ((), ())
           for p in parts]
    return fps, run.report


# -- the E8 suite, bit-identical across the wire -----------------------------


def test_e8_suite_bit_identical_across_wire(served, remote):
    wh, _svc = served
    for spec in analytical_suite():
        vec = wh.db.query(spec.sql)
        local_report = wh.db.last_report
        local_fps = [column_fingerprint(col) for col in vec.columns]

        remote_fps, remote_report = _remote_fingerprints(remote, spec.sql)
        assert remote_fps == local_fps, (
            f"{spec.qid}: remote rows diverge from in-process on "
            f"{spec.sql!r}")
        assert remote_report.rows_out == local_report.rows_out == \
            vec.row_count, f"{spec.qid}: report row counts disagree"


def test_remote_report_counters_match_in_process(served, remote):
    wh, _svc = served
    sql = ("SELECT station, COUNT(*) AS n FROM mseed.files "
           "GROUP BY station ORDER BY station")
    vec = wh.db.query(sql)
    cur = remote.execute(sql)
    rows = cur.fetchall()
    assert rows == list(zip(*[c.to_pylist() for c in vec.columns]))
    report = cur.report
    assert report.rows_out == vec.row_count
    # The full counter dict made it across (field-driven to_dict).
    data = report.to_dict()
    for key in ("parse_s", "execute_s", "rows_extracted", "plan_cache_hit",
                "pages_read", "total_s"):
        assert key in data
    assert cur.rowcount == vec.row_count


# -- cursor surface ----------------------------------------------------------


def test_remote_cursor_is_the_shared_cursor_class(remote):
    cur = remote.cursor()
    assert isinstance(cur, Cursor)
    cur.execute("SELECT COUNT(*) FROM mseed.files")
    assert cur.description is not None
    assert cur.description[0][0] == "count_star"
    cur.close()


def test_fetch_surfaces_agree(served, remote):
    wh, _svc = served
    sql = "SELECT seq_no FROM mseed.records ORDER BY seq_no"
    expected = [r for (r,) in wh.connect().execute(sql).fetchall()]

    cur = remote.cursor(batch_rows=7)
    cur.execute(sql)
    head = cur.fetchone()
    some = cur.fetchmany(5)
    rest = cur.fetchall()
    got = [head[0]] + [r for (r,) in some] + [r for (r,) in rest]
    assert got == expected

    cur.execute(sql)  # re-execute on the same cursor: fresh stream
    assert [r for (r,) in cur] == expected


def test_fetch_batches_window_delivers_identical_rows(served):
    wh, svc = served
    sql = "SELECT sample_time, sample_value FROM mseed.dataview"
    baseline = wh.db.query(sql)
    conn = connect_tcp("127.0.0.1", svc.tcp_port, token=TOKEN,
                       fetch_batches=3)
    try:
        fps, report = _remote_fingerprints(conn, sql, batch_rows=256)
        assert fps == [column_fingerprint(c) for c in baseline.columns]
        assert report.rows_out == baseline.row_count
    finally:
        conn.close()


def test_early_cursor_close_keeps_connection_usable(remote):
    cur = remote.cursor(batch_rows=16)
    cur.execute("SELECT sample_time FROM mseed.dataview")
    assert cur.fetchone() is not None
    cur.close()  # abandon mid-stream: CLOSE_CURSOR round trip
    assert remote.execute("SELECT COUNT(*) FROM mseed.files").scalar() > 0


# -- parameters (typed payloads, never interpolated) -------------------------


def test_positional_params_match_in_process(served, remote):
    wh, _svc = served
    sql = ("SELECT COUNT(*) FROM mseed.files "
           "WHERE station = ? AND sample_rate > ?")
    local = wh.connect().execute(sql, ("HGN", 1.5)).scalar()
    assert remote.execute(sql, ("HGN", 1.5)).scalar() == local
    assert local > 0


def test_named_params_and_prepared_statement(served, remote):
    wh, _svc = served
    sql = "SELECT COUNT(*) FROM mseed.files WHERE station = :sta"
    stmt = remote.prepare(sql)
    for sta in ("HGN", "DBN", "ISK", "nowhere"):
        local = wh.connect().execute(sql, {"sta": sta}).scalar()
        assert stmt.execute({"sta": sta}).scalar() == local


def test_float_param_bits_survive_the_wire(served, remote):
    wh, _svc = served
    # 0.1 has no exact decimal spelling: only a bit-exact transport
    # (float.hex) makes remote and local predicates agree everywhere.
    needle = 0.1 + 2**-40
    sql = "SELECT COUNT(*) FROM mseed.dataview WHERE sample_value > ?"
    local = wh.connect().execute(sql, (needle,)).scalar()
    assert remote.execute(sql, (needle,)).scalar() == local


def test_sql_never_interpolated(remote):
    # A hostile string parameter stays a value: it matches nothing,
    # instead of rewriting the statement.
    sql = "SELECT COUNT(*) FROM mseed.files WHERE station = ?"
    hostile = "x' OR '1'='1"
    assert remote.execute(sql, (hostile,)).scalar() == 0


# -- error mapping -----------------------------------------------------------


def test_remote_query_errors_carry_remote_type(remote):
    with pytest.raises(RemoteQueryError) as excinfo:
        remote.execute("SELECT nope FROM mseed.no_such_table")
    assert excinfo.value.remote_type == "BindError"
    with pytest.raises(RemoteQueryError) as excinfo:
        remote.execute("SELECT COUNT(* FROM mseed.files")
    assert excinfo.value.remote_type == "ParseError"
    # failures do not poison the connection
    assert remote.execute("SELECT COUNT(*) FROM mseed.files").scalar() > 0


# -- asyncio client ----------------------------------------------------------


def test_async_client_matches_sync(served):
    wh, svc = served
    sql = ("SELECT station, COUNT(*) AS n FROM mseed.files "
           "GROUP BY station ORDER BY station")
    expected = wh.connect().execute(sql).fetchall()

    async def main():
        conn = await connect_tcp_async("127.0.0.1", svc.tcp_port,
                                       token=TOKEN)
        async with conn:
            cur = await conn.execute(sql)
            rows = await cur.fetchall()
            assert cur.report is not None
            assert cur.report.rows_out == len(rows)
            assert cur.rowcount == len(rows)
            return rows

    assert asyncio.run(main()) == expected


def test_async_cursors_pipeline_on_one_connection(served):
    wh, svc = served
    stations = ("HGN", "DBN", "ISK")
    sql = "SELECT COUNT(*) FROM mseed.files WHERE station = ?"
    expected = [wh.connect().execute(sql, (s,)).scalar() for s in stations]

    async def main():
        conn = await connect_tcp_async("127.0.0.1", svc.tcp_port,
                                       token=TOKEN)
        async with conn:
            async def one(station):
                cur = await conn.execute(sql, (station,))
                return await cur.scalar()

            return await asyncio.gather(*[one(s) for s in stations])

    assert asyncio.run(main()) == expected


def test_async_iteration_and_fetchmany(served):
    wh, svc = served
    sql = "SELECT seq_no FROM mseed.records ORDER BY seq_no"
    expected = [r for (r,) in wh.connect().execute(sql).fetchall()]

    async def main():
        conn = await connect_tcp_async("127.0.0.1", svc.tcp_port,
                                       token=TOKEN, batch_rows=8)
        async with conn:
            cur = await conn.execute(sql)
            first = await cur.fetchmany(3)
            rest = [row async for row in cur]
            return [r for (r,) in first] + [r for (r,) in rest]

    assert asyncio.run(main()) == expected


def test_async_float_rows_bit_exact(served):
    wh, svc = served
    sql = ("SELECT sample_value FROM mseed.dataview "
           "WHERE station = 'HGN' LIMIT 500")
    expected = [r for (r,) in wh.connect().execute(sql).fetchall()]

    async def main():
        conn = await connect_tcp_async("127.0.0.1", svc.tcp_port,
                                       token=TOKEN)
        async with conn:
            cur = await conn.execute(sql)
            return [r for (r,) in await cur.fetchall()]

    got = asyncio.run(main())
    assert len(got) == len(expected)
    for sent, received in zip(expected, got):
        assert struct.pack("<d", sent) == struct.pack("<d", received)
