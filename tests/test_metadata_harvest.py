"""Tests for metadata harvesting and the record index."""

import pytest
from hypothesis import given, strategies as st

from repro.etl.metadata import (
    Granularity,
    RecordIndex,
    RecordMeta,
    WHOLE_FILE_SEQ,
    harvest_repository,
)
from repro.etl.mseed_adapter import MSeedAdapter
from repro.mseed.repository import Repository


@pytest.fixture(scope="module")
def repo(demo_repo):
    return Repository(demo_repo.root)


def test_record_granularity_exact(repo, demo_repo):
    result = harvest_repository(repo, MSeedAdapter(), Granularity.RECORD)
    assert len(result.files) == len(demo_repo.entries)
    assert len(result.records) == sum(e.n_records for e in demo_repo.entries)
    by_uri = {m.uri: m for m in result.files}
    for entry in demo_repo.entries:
        uri = entry.path.split(str(demo_repo.root) + "/")[-1]
        meta = by_uri[uri]
        assert meta.station == entry.station
        assert meta.start_time_us == entry.start_time_us
        assert meta.n_records == entry.n_records
        assert meta.exact_span


def test_file_granularity_one_pseudo_record(repo, demo_repo):
    result = harvest_repository(repo, MSeedAdapter(), Granularity.FILE)
    assert len(result.records) == len(demo_repo.entries)
    assert all(r.seq_no == WHOLE_FILE_SEQ for r in result.records)
    assert all(not m.exact_span for m in result.files)


def test_filename_granularity_opens_nothing(repo):
    repo.reset_counters()
    result = harvest_repository(repo, MSeedAdapter(), Granularity.FILENAME)
    assert result.files_opened == 0
    assert repo.bytes_read == 0
    assert all(r.seq_no == WHOLE_FILE_SEQ for r in result.records)


def test_granularity_cost_ordering(repo):
    filename = harvest_repository(repo, MSeedAdapter(), Granularity.FILENAME)
    file_level = harvest_repository(repo, MSeedAdapter(), Granularity.FILE)
    record = harvest_repository(repo, MSeedAdapter(), Granularity.RECORD)
    assert filename.bytes_read <= file_level.bytes_read <= record.bytes_read
    assert record.bytes_read > file_level.bytes_read


def _record(seq, start, end):
    return RecordMeta(uri="f", seq_no=seq, start_time_us=start,
                      end_time_us=end, frequency=40.0, sample_count=10)


def test_index_prune_overlap():
    index = RecordIndex()
    index.replace_file("f", [_record(1, 0, 100), _record(2, 100, 200),
                             _record(3, 200, 300)], exact=True)
    assert index.prune("f", [1, 2, 3], (None, None)) == [1, 2, 3]
    assert index.prune("f", [1, 2, 3], (150, 160)) == [2]
    assert index.prune("f", [1, 2, 3], (None, 50)) == [1]
    assert index.prune("f", [1, 2, 3], (250, None)) == [3]
    # Boundary inclusivity: a record ending exactly at lo survives.
    assert 1 in index.prune("f", [1, 2, 3], (100, 120))


def test_index_prune_inexact_never_drops():
    index = RecordIndex()
    index.replace_file("f", [_record(0, 0, 100)], exact=False)
    assert index.prune("f", [0], (500, 600)) == [0]


def test_index_prune_unknown_record_kept():
    index = RecordIndex()
    index.replace_file("f", [_record(1, 0, 100)], exact=True)
    assert index.prune("f", [1, 99], (500, 600)) == [99]


def test_index_drop_file():
    index = RecordIndex()
    index.replace_file("f", [_record(1, 0, 100)], exact=True)
    index.drop_file("f")
    assert index.files() == []
    assert index.spans("f") == []


@given(
    st.lists(
        st.tuples(st.integers(0, 1000), st.integers(0, 1000)),
        min_size=1, max_size=20,
    ),
    st.integers(0, 1000), st.integers(0, 1000),
)
def test_prune_soundness_property(spans, lo, hi):
    """Pruning never removes a record that overlaps the bounds."""
    lo, hi = min(lo, hi), max(lo, hi)
    index = RecordIndex()
    records = [
        _record(i, min(a, b), max(a, b))
        for i, (a, b) in enumerate(spans)
    ]
    index.replace_file("f", records, exact=True)
    kept = set(index.prune("f", [r.seq_no for r in records], (lo, hi)))
    for record in records:
        overlaps = record.end_time_us >= lo and record.start_time_us <= hi
        if overlaps:
            assert record.seq_no in kept
