"""Failure injection: corrupt files, vanished files, foreign content."""

import os

import numpy as np
import pytest

from repro.errors import FileMissingError
from repro.etl.metadata import Granularity, harvest_repository
from repro.etl.mseed_adapter import MSeedAdapter
from repro.mseed.repository import Repository
from repro.seismology.queries import fig1_query2
from repro.seismology.warehouse import SeismicWarehouse


def _corrupt(path: str) -> None:
    with open(path, "r+b") as handle:
        handle.seek(0)
        handle.write(b"\xff" * 64)


def test_harvest_skips_corrupt_files(mutable_repo):
    _corrupt(mutable_repo.entries[0].path)
    repo = Repository(mutable_repo.root)
    result = harvest_repository(repo, MSeedAdapter(), Granularity.RECORD)
    assert len(result.skipped) == 1
    assert len(result.files) == len(mutable_repo.entries) - 1


def test_harvest_strict_raises(mutable_repo):
    from repro.errors import MSeedError

    _corrupt(mutable_repo.entries[0].path)
    repo = Repository(mutable_repo.root)
    with pytest.raises(MSeedError):
        harvest_repository(repo, MSeedAdapter(), Granularity.RECORD,
                           strict=True)


def test_warehouse_boots_over_partially_corrupt_repo(mutable_repo):
    doomed = next(e for e in mutable_repo.entries
                  if e.station == "ISK" and e.channel == "BHZ")
    _corrupt(doomed.path)
    wh = SeismicWarehouse(mutable_repo.root, mode="lazy")
    # The corrupt file is absent from metadata; everything else works.
    assert wh.query(
        "SELECT COUNT(*) FROM mseed.files").scalar() == \
        len(mutable_repo.entries) - 1
    result = wh.query(fig1_query2())
    assert result.row_count >= 1


def test_file_vanishing_between_metadata_and_fetch(mutable_repo):
    wh = SeismicWarehouse(mutable_repo.root, mode="lazy")
    victim = next(e for e in mutable_repo.entries
                  if e.station == "HGN" and e.channel == "BHZ")
    os.remove(victim.path)
    # Metadata still references the file; extraction must surface a clear
    # error rather than a stack of OS noise.
    with pytest.raises(FileMissingError):
        wh.query("SELECT COUNT(*) FROM mseed.dataview "
                 "WHERE F.station = 'HGN' AND F.channel = 'BHZ'")
    # After a sync the warehouse recovers.
    wh.sync()
    count = wh.query("SELECT COUNT(*) FROM mseed.dataview "
                     "WHERE F.station = 'HGN' AND F.channel = 'BHZ'").scalar()
    assert count == sum(
        e.n_samples for e in mutable_repo.entries
        if e.station == "HGN" and e.channel == "BHZ" and e.path != victim.path
    )


def test_truncated_file_mid_repo(mutable_repo):
    victim = mutable_repo.entries[0]
    size = os.path.getsize(victim.path)
    with open(victim.path, "r+b") as handle:
        handle.truncate(size - 100)  # no longer a record multiple
    repo = Repository(mutable_repo.root)
    result = harvest_repository(repo, MSeedAdapter(), Granularity.RECORD)
    uri = os.path.relpath(victim.path, mutable_repo.root)
    assert any(skipped_uri == uri for skipped_uri, _err in result.skipped)


def test_oplog_notes_skipped_files(mutable_repo):
    from repro.util.oplog import OperationLog

    _corrupt(mutable_repo.entries[0].path)
    repo = Repository(mutable_repo.root)
    log = OperationLog()
    harvest_repository(repo, MSeedAdapter(), Granularity.RECORD, log)
    messages = [e.message for e in log.entries("harvest")]
    assert any("skipped corrupt" in m for m in messages)
