"""The central correctness property: lazy == eager == external.

Whatever the ingestion strategy, every query must return identical
results — Lazy ETL is an optimisation of *when* work happens, never of
*what* the warehouse answers.
"""

import pytest

from repro.seismology.queries import (
    analytical_suite,
    fig1_query1,
    fig1_query2,
    suite_for_external,
)
from repro.seismology.warehouse import SeismicWarehouse


@pytest.fixture(scope="module")
def warehouses(demo_repo):
    return {
        "lazy": SeismicWarehouse(demo_repo.root, mode="lazy"),
        "eager": SeismicWarehouse(demo_repo.root, mode="eager"),
        "external": SeismicWarehouse(demo_repo.root, mode="external"),
    }


def _sorted_rows(result):
    return sorted(result.rows(), key=lambda row: tuple(str(c) for c in row))


def test_fig1_q1_equivalence(warehouses):
    expected = warehouses["eager"].query(fig1_query1()).rows()
    assert warehouses["lazy"].query(fig1_query1()).rows() == expected
    assert warehouses["external"].query(fig1_query1()).rows() == expected
    # And the answer is a real number over a nonempty window.
    assert expected[0][0] is not None


def test_fig1_q2_equivalence(warehouses):
    expected = _sorted_rows(warehouses["eager"].query(fig1_query2()))
    assert len(expected) == 2  # HGN and DBN carry BHZ in the fixture
    assert _sorted_rows(warehouses["lazy"].query(fig1_query2())) == expected
    assert _sorted_rows(warehouses["external"].query(fig1_query2())) == expected


@pytest.mark.parametrize("qid", ["Q1", "Q2", "Q3", "Q4", "Q5", "Q6", "Q7"])
def test_suite_equivalence(warehouses, qid):
    spec = next(s for s in analytical_suite() if s.qid == qid)
    expected = _sorted_rows(warehouses["eager"].query(spec.sql))
    got_lazy = _sorted_rows(warehouses["lazy"].query(spec.sql))
    assert got_lazy == expected, f"{qid} lazy mismatch"
    got_external = _sorted_rows(warehouses["external"].query(spec.sql))
    assert got_external == expected, f"{qid} external mismatch"


def test_q8_metadata_query_lazy_vs_eager(warehouses):
    spec = next(s for s in analytical_suite() if s.qid == "Q8")
    expected = warehouses["eager"].query(spec.sql).rows()
    assert warehouses["lazy"].query(spec.sql).rows() == expected


def test_lazy_warm_equals_cold(demo_repo):
    wh = SeismicWarehouse(demo_repo.root, mode="lazy")
    cold = wh.query(fig1_query2()).rows()
    warm = wh.query(fig1_query2()).rows()
    assert warm == cold


def test_eager_data_table_complete(warehouses, demo_repo):
    count = warehouses["eager"].query(
        "SELECT COUNT(*) FROM mseed.data").scalar()
    assert count == demo_repo.total_samples


def test_sample_sums_match_across_modes(warehouses):
    sql = ("SELECT SUM(D.sample_value), COUNT(*) FROM mseed.dataview "
           "WHERE F.channel = 'BHE'")
    expected = warehouses["eager"].query(sql).first()
    assert warehouses["lazy"].query(sql).first() == expected
    assert warehouses["external"].query(sql).first() == expected


# ---------------------------------------------------------------------------
# Differential oracle: every corpus query, three executors, byte identity
# ---------------------------------------------------------------------------


ORACLE_CORPUS = [("fig1_q1", fig1_query1()), ("fig1_q2", fig1_query2())] + [
    (spec.qid, spec.sql) for spec in analytical_suite()
]


@pytest.mark.oracle
@pytest.mark.parametrize("qid,sql", ORACLE_CORPUS,
                         ids=[qid for qid, _sql in ORACLE_CORPUS])
@pytest.mark.parametrize("mode", ["lazy", "eager", "external"])
def test_differential_oracle_corpus(warehouses, differential_oracle,
                                    mode, qid, sql):
    """Vectorised, streamed and row-at-a-time execution agree bit-for-bit
    on the full SQL corpus, whatever the ingestion mode."""
    if mode == "external" and qid == "Q8":
        pytest.skip("external mode has no mseed.files metadata table")
    differential_oracle(warehouses[mode].db, sql)
