"""Wire frame format: packing, params, batch codecs, hostile input."""

import math
import socket
import struct
import threading

import numpy as np
import pytest

from repro.db.column import Column
from repro.db.exec.result import Result
from repro.db.types import DataType
from repro.errors import WireProtocolError
from repro.net import frames


# -- frame header ------------------------------------------------------------


def test_pack_split_roundtrip():
    frame = frames.pack_frame(frames.MSG_PING, b"abc")
    msg_type, length = frames.split_header(
        frame[:frames.HEADER_SIZE], max_frame_bytes=1024)
    assert msg_type == frames.MSG_PING
    assert length == 3
    assert frame[frames.HEADER_SIZE:] == b"abc"


def test_split_header_rejects_torn():
    with pytest.raises(WireProtocolError, match="torn"):
        frames.split_header(b"\x01\x02", max_frame_bytes=1024)


def test_split_header_rejects_oversized():
    header = struct.pack("<IB", 10_000 + 1, frames.MSG_OPEN)
    with pytest.raises(WireProtocolError, match="exceeds"):
        frames.split_header(header, max_frame_bytes=9_999)


def test_split_header_rejects_unknown_type():
    header = struct.pack("<IB", 1, 0x7E)
    with pytest.raises(WireProtocolError, match="unknown frame type"):
        frames.split_header(header, max_frame_bytes=1024)


def test_split_header_rejects_zero_length():
    header = struct.pack("<IB", 0, frames.MSG_PING)
    with pytest.raises(WireProtocolError, match="invalid frame length"):
        frames.split_header(header, max_frame_bytes=1024)


def test_json_payload_rejects_garbage():
    with pytest.raises(WireProtocolError, match="not JSON"):
        frames.decode_json_payload(b"\xff\xfe")
    with pytest.raises(WireProtocolError, match="JSON object"):
        frames.decode_json_payload(b"[1,2]")


def test_recv_frame_sock_roundtrip_and_torn():
    a, b = socket.socketpair()
    try:
        a.sendall(frames.pack_json_frame(frames.MSG_PING, {"x": 1}))
        msg_type, payload = frames.recv_frame_sock(b)
        assert msg_type == frames.MSG_PING
        assert frames.decode_json_payload(payload) == {"x": 1}

        # A frame whose advertised payload never arrives is torn.
        def tear():
            a.sendall(struct.pack("<IB", 100, frames.MSG_OPEN) + b"short")
            a.close()

        t = threading.Thread(target=tear)
        t.start()
        with pytest.raises(WireProtocolError, match="torn frame"):
            frames.recv_frame_sock(b)
        t.join()
    finally:
        a.close()
        b.close()


def test_recv_frame_sock_clean_eof_is_connection_error():
    a, b = socket.socketpair()
    a.close()
    try:
        with pytest.raises(ConnectionError):
            frames.recv_frame_sock(b)
    finally:
        b.close()


# -- parameter payloads ------------------------------------------------------


def test_params_positional_roundtrip_bit_exact():
    values = (1, -2**40, True, False, None, "naïve", 0.1, -0.0,
              math.inf, -math.inf, 5e-324)
    packed = frames.pack_params(values)
    out = frames.unpack_params(packed)
    assert isinstance(out, tuple)
    for sent, got in zip(values, out):
        if isinstance(sent, float):
            assert struct.pack("<d", sent) == struct.pack("<d", got)
        else:
            assert sent == got and type(sent) is type(got)


def test_params_nan_survives():
    (value,) = frames.unpack_params(frames.pack_params((math.nan,)))
    assert math.isnan(value)


def test_params_named_roundtrip():
    out = frames.unpack_params(frames.pack_params({"a": 1, "b": "x"}))
    assert out == {"a": 1, "b": "x"}


def test_params_none_passthrough():
    assert frames.pack_params(None) is None
    assert frames.unpack_params(None) is None


def test_params_reject_unsupported_type():
    with pytest.raises(WireProtocolError, match="cannot travel"):
        frames.pack_params((b"bytes",))


def test_params_reject_malformed_payloads():
    with pytest.raises(WireProtocolError):
        frames.unpack_params({"positional": [["?", 1]]})
    with pytest.raises(WireProtocolError):
        frames.unpack_params({"weird": []})
    with pytest.raises(WireProtocolError):
        frames.unpack_params("nope")


# -- result batches ----------------------------------------------------------


def _batch_roundtrip(result: Result) -> Result:
    payload = frames.encode_result_batch(7, result)
    cursor_id, decoded = frames.decode_result_batch(
        payload, list(result.names))
    assert cursor_id == 7
    return decoded


def test_batch_roundtrip_all_dtypes_with_nulls():
    n = 100
    valid = np.array([i % 7 != 0 for i in range(n)])
    result = Result(
        ["b", "i", "d", "s", "t"],
        [
            Column(DataType.BOOLEAN, np.arange(n) % 2 == 0, valid.copy()),
            Column(DataType.BIGINT, np.arange(n, dtype=np.int64) * 3 - n,
                   valid.copy()),
            Column(DataType.DOUBLE, np.linspace(-1.5, 2.5, n), valid.copy()),
            Column(DataType.VARCHAR,
                   np.array([f"row-{i % 5}" for i in range(n)],
                            dtype=object), valid.copy()),
            Column(DataType.TIMESTAMP,
                   np.arange(n, dtype=np.int64) * 1_000_000, None),
        ],
    )
    decoded = _batch_roundtrip(result)
    for sent, got in zip(result.columns, decoded.columns):
        assert sent.dtype == got.dtype
        assert sent.to_pylist() == got.to_pylist()


def test_batch_roundtrip_float_bits_exact():
    values = np.array([0.1, -0.0, math.inf, 5e-324, 1e308])
    result = Result(["x"], [Column(DataType.DOUBLE, values, None)])
    decoded = _batch_roundtrip(result)
    assert decoded.columns[0].values.tobytes() == values.tobytes()


def test_batch_roundtrip_empty():
    result = Result(["x"], [Column(DataType.BIGINT,
                                   np.array([], dtype=np.int64), None)])
    decoded = _batch_roundtrip(result)
    assert decoded.row_count == 0


def test_batch_decode_rejects_column_mismatch():
    result = Result(["x"], [Column(DataType.BIGINT,
                                   np.arange(4, dtype=np.int64), None)])
    payload = frames.encode_result_batch(1, result)
    with pytest.raises(WireProtocolError, match="columns"):
        frames.decode_result_batch(payload, ["x", "y"])


def test_batch_decode_rejects_truncated_payload():
    result = Result(["x"], [Column(DataType.BIGINT,
                                   np.arange(64, dtype=np.int64), None)])
    payload = frames.encode_result_batch(1, result)
    with pytest.raises(WireProtocolError, match="malformed batch"):
        frames.decode_result_batch(payload[:15], ["x"])


def test_dtype_names_roundtrip():
    dtypes = [DataType.BIGINT, DataType.VARCHAR, DataType.DOUBLE]
    assert frames.dtypes_from_names(frames.dtype_names(dtypes)) == dtypes
    with pytest.raises(WireProtocolError, match="unknown column type"):
        frames.dtypes_from_names(["no-such-type"])
