"""Warehouse- and service-level metrics: collectors, scrape, slow log.

The warehouse owns one :class:`MetricsRegistry`; the service hangs its
latency instruments and subsystem collectors on it, so a single scrape
covers storage, ETL and serving.
"""

from __future__ import annotations

import json
import logging
import time

import pytest

from repro.errors import ServiceError, SQLError
from repro.obs.export import label_cardinality, parse_exposition
from repro.seismology.warehouse import SeismicWarehouse

COUNT_NL = "SELECT COUNT(*) AS n FROM mseed.dataview WHERE F.network = 'NL'"


def _values(snapshot: dict, name: str) -> dict:
    return {tuple(sorted(s["labels"].items())): s
            for s in snapshot[name]["samples"]}


# ---------------------------------------------------------------------------
# warehouse collectors
# ---------------------------------------------------------------------------


def test_warehouse_metrics_cover_subsystems(demo_repo, tmp_path):
    # Attached storage so the buffer-pool series exist too.
    wh = SeismicWarehouse(demo_repo.root, mode="lazy",
                          storage_path=tmp_path / "store")
    wh.query(COUNT_NL)
    wh.query(COUNT_NL)
    snap = wh.metrics()
    for name in ("repro_cache_hits_total", "repro_cache_misses_total",
                 "repro_cache_used_bytes", "repro_bufferpool_lookups_total",
                 "repro_plan_cache_hits_total", "repro_recycler_hits_total",
                 "repro_heat_tracked_units", "repro_extract_seconds",
                 "repro_extract_rows_total"):
        assert name in snap, f"missing {name}"
    # The second run compiled from the plan cache.
    (hits,) = snap["repro_plan_cache_hits_total"]["samples"]
    assert hits["value"] >= 1
    extracted = snap["repro_extract_rows_total"]["samples"][0]["value"]
    assert extracted == wh.db.last_report.rows_extracted > 0


def test_extract_seconds_histogram_counts_files(demo_repo):
    wh = SeismicWarehouse(demo_repo.root, mode="lazy")
    wh.query(COUNT_NL)
    (sample,) = wh.metrics()["repro_extract_seconds"]["samples"]
    assert sample["count"] == len(wh.files_extracted_by_last_query())
    assert sample["sum"] > 0


def test_eager_mode_scrapes_without_extraction_instruments(demo_repo):
    wh = SeismicWarehouse(demo_repo.root, mode="eager")
    wh.query("SELECT COUNT(*) AS n FROM mseed.data")
    snap = wh.metrics()
    assert "repro_plan_cache_misses_total" in snap
    assert "repro_extract_seconds" not in snap
    parse_exposition(wh.metrics_text())


def test_metrics_text_parses_with_bounded_cardinality(demo_repo):
    wh = SeismicWarehouse(demo_repo.root, mode="lazy")
    wh.query(COUNT_NL)
    samples = parse_exposition(wh.metrics_text())
    assert samples
    card = label_cardinality(samples)
    assert max(card.values()) <= 64


def test_metrics_json_embeds_extras(demo_repo):
    wh = SeismicWarehouse(demo_repo.root, mode="lazy")
    wh.query(COUNT_NL)
    payload = json.loads(wh.metrics_json(run="r1"))
    assert payload["run"] == "r1"
    assert "repro_cache_lookups_total" in payload["metrics"]


# ---------------------------------------------------------------------------
# served warehouse
# ---------------------------------------------------------------------------


def test_service_latency_and_status_metrics(demo_repo):
    wh = SeismicWarehouse(demo_repo.root, mode="lazy")
    with wh.serve(max_workers=2) as svc:
        for _ in range(3):
            svc.query(COUNT_NL, session="alice")
        svc.query(COUNT_NL, session="bob")
        with pytest.raises(SQLError):
            svc.query("SELECT nope FROM nowhere")
        snap = wh.metrics()
        status = _values(snap, "repro_queries_total")
        assert status[(("status", "ok"),)]["value"] == 4
        assert status[(("status", "error"),)]["value"] == 1
        latency = _values(snap, "repro_query_seconds")
        assert latency[(("session", "alice"),)]["count"] == 3
        assert latency[(("session", "bob"),)]["count"] == 1
        (wait,) = snap["repro_queue_wait_seconds"]["samples"]
        assert wait["count"] == 5
        assert "repro_service_queue_depth" in snap
        assert snap["repro_service_submitted_total"]["samples"][0]["value"] == 5


def test_service_failure_logged(demo_repo, caplog):
    wh = SeismicWarehouse(demo_repo.root, mode="lazy")
    with wh.serve(max_workers=1) as svc:
        with caplog.at_level(logging.WARNING, logger="repro.service"):
            with pytest.raises(SQLError):
                svc.query("SELECT nope FROM nowhere", session="s1")
    assert any("query failed on s1" in r.message for r in caplog.records)


def test_service_slow_query_log(demo_repo):
    wh = SeismicWarehouse(demo_repo.root, mode="lazy")
    with wh.serve(max_workers=1, slow_query_s=1e-9) as svc:
        svc.query(COUNT_NL, session="s1")
        assert len(svc.slow_log) == 1
        (entry,) = svc.slow_log.entries()
        assert entry["session"] == "s1"
        assert entry["rows_out"] == 1
        assert wh.metrics()["repro_slow_queries_total"]["samples"][0]["value"] == 1


def test_service_slow_log_threshold_filters(demo_repo):
    wh = SeismicWarehouse(demo_repo.root, mode="lazy")
    with wh.serve(max_workers=1, slow_query_s=3600.0) as svc:
        svc.query(COUNT_NL)
        assert len(svc.slow_log) == 0


def test_service_snapshotter_lifecycle(demo_repo):
    wh = SeismicWarehouse(demo_repo.root, mode="lazy")
    with wh.serve(max_workers=1, metrics_interval_s=0.02,
                  metrics_history=4) as svc:
        svc.query(COUNT_NL)
        time.sleep(0.06)
        snapshotter = svc.snapshotter
        assert snapshotter is not None
    snaps = snapshotter.snapshots()
    assert 1 <= len(snaps) <= 4
    assert "repro_queries_total" in snaps[-1]["metrics"]


def test_closed_service_stops_contributing_series(demo_repo):
    wh = SeismicWarehouse(demo_repo.root, mode="lazy")
    with wh.serve(max_workers=1) as svc:
        svc.query(COUNT_NL)
        assert "repro_service_queue_depth" in wh.metrics()
    snap = wh.metrics()
    assert "repro_service_queue_depth" not in snap
    # Directly-registered instruments survive: history is not erased.
    assert "repro_queries_total" in snap


def test_service_config_validation(demo_repo):
    wh = SeismicWarehouse(demo_repo.root, mode="lazy")
    with pytest.raises(ServiceError):
        wh.serve(slow_query_s=0.0)
    with pytest.raises(ServiceError):
        wh.serve(metrics_interval_s=-1.0)
    with pytest.raises(ServiceError):
        wh.serve(metrics_history=0)
