"""Behavioural tests for the lazy pipeline: §3.1-§3.3 step by step."""

import pytest

from repro.etl.metadata import Granularity
from repro.seismology.queries import fig1_query1, fig1_query2
from repro.seismology.warehouse import SeismicWarehouse


def test_initial_load_fills_only_metadata(lazy_wh, demo_repo):
    files = lazy_wh.query("SELECT COUNT(*) FROM mseed.files").scalar()
    records = lazy_wh.query("SELECT COUNT(*) FROM mseed.records").scalar()
    assert files == len(demo_repo.entries)
    assert records == sum(e.n_records for e in demo_repo.entries)
    # The actual-data table is virtual: zero stored rows.
    assert lazy_wh.db.table("mseed.data").row_count == 0
    assert lazy_wh.load_report.samples_loaded == 0


def test_metadata_only_load_is_much_cheaper_than_repo(lazy_wh, demo_repo):
    # Initial loading read at most the headers: far less than the repo size.
    assert lazy_wh.load_report.bytes_read < demo_repo.total_bytes / 3


def test_query_extracts_only_matching_files(lazy_wh):
    lazy_wh.query(fig1_query1())
    touched = lazy_wh.files_extracted_by_last_query()
    assert len(touched) == 1
    assert "ISK" in touched[0] and "BHE" in touched[0]


def test_trace_shows_rewrite_prune_extract(lazy_wh):
    lazy_wh.query(fig1_query1())
    ops = [entry["op"] for entry in lazy_wh.last_trace]
    assert "rewrite" in ops
    assert "extract" in ops
    assert "prune" in ops  # the 2-second window prunes most records
    rendered = lazy_wh.render_last_trace()
    assert "extract" in rendered


def test_time_bound_pruning_limits_extraction(lazy_wh):
    lazy_wh.query(fig1_query1())
    # 2 seconds at 40 Hz live in a single 512-byte record (plus a possible
    # boundary neighbour): extraction must be a handful of records, not
    # the ~47 records of the file.
    extract_ops = [e for e in lazy_wh.last_trace if e["op"] == "extract"]
    assert sum(e["records"] for e in extract_ops) <= 3


def test_second_query_hits_cache_without_file_reads(demo_repo):
    wh = SeismicWarehouse(demo_repo.root, mode="lazy",
                          enable_recycler=False)
    wh.query(fig1_query1())
    wh.repo.reset_counters()
    wh.query(fig1_query1())
    assert wh.repo.reads == 0  # §3.1 best case: no ETL at all
    ops = [e["op"] for e in wh.last_trace]
    assert "cache_fetch" in ops and "extract" not in ops


def test_overlapping_query_reuses_partial_cache(demo_repo):
    wh = SeismicWarehouse(demo_repo.root, mode="lazy",
                          enable_recycler=False)
    wh.query(fig1_query1(window_start="2010-01-12T22:15:00.000",
                         window_end="2010-01-12T22:15:02.000"))
    baseline_hits = wh.cache.stats.hits
    # A wider window over the same stream reuses the cached records and
    # extracts only the difference.
    wh.query(fig1_query1(window_start="2010-01-12T22:15:00.000",
                         window_end="2010-01-12T22:15:10.000"))
    assert wh.cache.stats.hits > baseline_hits
    extract_ops = [e for e in wh.last_trace if e["op"] == "extract"]
    cache_ops = [e for e in wh.last_trace if e["op"] == "cache_fetch"]
    assert cache_ops, "expected partial cache reuse"
    assert extract_ops, "expected the window difference to be extracted"


def test_metadata_browsing_reads_no_payload(lazy_wh):
    lazy_wh.repo.reset_counters()
    lazy_wh.query(
        "SELECT network, station, COUNT(*) FROM mseed.files "
        "GROUP BY network, station")
    assert lazy_wh.repo.reads == 0


def test_worst_case_full_scan(lazy_wh, demo_repo):
    total = lazy_wh.query("SELECT COUNT(*) FROM mseed.data").scalar()
    assert total == demo_repo.total_samples


def test_coarse_granularity_extracts_whole_files(demo_repo):
    wh = SeismicWarehouse(demo_repo.root, mode="lazy",
                          granularity=Granularity.FILE)
    result = wh.query(fig1_query1())
    # Same answer as record granularity...
    fine = SeismicWarehouse(demo_repo.root, mode="lazy")
    assert result.rows() == fine.query(fig1_query1()).rows()
    # ...but extraction could not prune below the file.
    assert wh.db.last_report.rows_extracted > \
        fine.db.last_report.rows_extracted


def test_filename_granularity_instant_load(demo_repo):
    wh = SeismicWarehouse(demo_repo.root, mode="lazy",
                          granularity=Granularity.FILENAME)
    assert wh.load_report.bytes_read == 0
    fine = SeismicWarehouse(demo_repo.root, mode="lazy")
    assert wh.query(fig1_query2()).rows() == \
        fine.query(fig1_query2()).rows()


def test_oplog_records_lazy_steps(lazy_wh):
    lazy_wh.query(fig1_query1())
    categories = lazy_wh.oplog.categories()
    assert "harvest" in categories
    assert "extract" in categories
    assert "query" in categories
