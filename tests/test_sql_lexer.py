"""Tests for the SQL lexer."""

import pytest

from repro.db.sql.lexer import TokenType, tokenize
from repro.errors import LexerError


def _texts(sql):
    return [(t.type, t.text) for t in tokenize(sql)[:-1]]


def test_keywords_case_insensitive():
    tokens = tokenize("SELECT sElEcT select")
    assert all(t.is_keyword("select") for t in tokens[:-1])


def test_identifiers_folded_lower():
    assert _texts("Station")[0] == (TokenType.IDENT, "station")


def test_quoted_identifier_preserves_case():
    assert _texts('"MixedCase"')[0] == (TokenType.IDENT, "MixedCase")


def test_string_literal_with_escape():
    tokens = tokenize("'it''s'")
    assert tokens[0].type == TokenType.STRING
    assert tokens[0].text == "it's"


def test_unterminated_string():
    with pytest.raises(LexerError):
        tokenize("'oops")


def test_numbers():
    assert _texts("42")[0] == (TokenType.NUMBER, "42")
    assert _texts("3.14")[0] == (TokenType.NUMBER, "3.14")
    assert _texts("1e-3")[0] == (TokenType.NUMBER, "1e-3")
    assert _texts("2.5E+10")[0] == (TokenType.NUMBER, "2.5E+10")


def test_qualified_name_tokens():
    kinds = [t[0] for t in _texts("mseed.dataview")]
    assert kinds == [TokenType.IDENT, TokenType.PUNCT, TokenType.IDENT]


def test_operators():
    ops = [t[1] for t in _texts("a <> b <= c >= d != e || f")]
    assert "<>" in ops and "<=" in ops and ">=" in ops and "!=" in ops
    assert "||" in ops


def test_comments_skipped():
    tokens = tokenize("SELECT -- a comment\n 1 /* block\ncomment */ + 2")
    texts = [t.text for t in tokens[:-1]]
    assert texts == ["select", "1", "+", "2"]


def test_unterminated_block_comment():
    with pytest.raises(LexerError):
        tokenize("/* never ends")


def test_unknown_character():
    with pytest.raises(LexerError) as err:
        tokenize("SELECT ~")
    assert err.value.position == 7


def test_eof_token_present():
    tokens = tokenize("")
    assert len(tokens) == 1
    assert tokens[0].type == TokenType.EOF
