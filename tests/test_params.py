"""Prepared-statement parameter binding: styles, inference, edge cases."""

import pytest

from repro.db.exec.engine import Database
from repro.errors import ParameterError, ParseError, ReproError

import numpy as np


@pytest.fixture()
def db():
    database = Database()
    database.execute(
        "CREATE TABLE items (id BIGINT, name VARCHAR, price DOUBLE, "
        "seen TIMESTAMP)"
    )
    database.execute(
        "INSERT INTO items VALUES "
        "(1, 'anchor', 2.5, '2010-01-12T00:00:00.000'), "
        "(2, 'bolt', 0.4, '2010-01-12T06:00:00.000'), "
        "(3, 'clamp', 1.1, '2010-01-12T12:00:00.000'), "
        "(4, 'O''HARE', 9.9, '2010-01-12T18:00:00.000')"
    )
    return database


# -- binding styles ----------------------------------------------------------


def test_positional_params(db):
    result = db.query("SELECT name FROM items WHERE id = ?", [2])
    assert result.rows() == [("bolt",)]


def test_named_params(db):
    result = db.query(
        "SELECT id FROM items WHERE name = :n OR price > :p ORDER BY id",
        {"n": "anchor", "p": 5.0},
    )
    assert result.rows() == [(1,), (4,)]


def test_same_named_param_used_twice(db):
    result = db.query(
        "SELECT id FROM items WHERE id = :x OR id = :x + 1 ORDER BY id",
        {"x": 2},
    )
    assert result.rows() == [(2,), (3,)]


def test_mixed_styles_rejected(db):
    with pytest.raises(ParseError, match="cannot mix"):
        db.query("SELECT id FROM items WHERE id = ? AND name = :n",
                 [1])


# -- arity and naming errors -------------------------------------------------


def test_missing_positional(db):
    with pytest.raises(ParameterError, match="expects 2 parameter"):
        db.query("SELECT id FROM items WHERE id > ? AND id < ?", [1])


def test_extra_positional(db):
    with pytest.raises(ParameterError, match="expects 1 parameter"):
        db.query("SELECT id FROM items WHERE id = ?", [1, 2])


def test_no_values_for_positional(db):
    with pytest.raises(ParameterError, match="pass a sequence"):
        db.query("SELECT id FROM items WHERE id = ?")


def test_missing_named(db):
    with pytest.raises(ParameterError, match="missing named parameter"):
        db.query("SELECT id FROM items WHERE id = :a AND name = :b",
                 {"a": 1})


def test_extra_named(db):
    with pytest.raises(ParameterError, match="unknown named parameter"):
        db.query("SELECT id FROM items WHERE id = :a",
                 {"a": 1, "oops": 2})


def test_values_for_unparameterized_statement(db):
    with pytest.raises(ParameterError, match="takes no parameters"):
        db.query("SELECT id FROM items", [1])


def test_mapping_for_positional_rejected(db):
    with pytest.raises(ParameterError, match="positional"):
        db.query("SELECT id FROM items WHERE id = ?", {"id": 1})


def test_bare_string_rejected_as_positional_params(db):
    # A string iterates per character; binding it as a sequence is
    # always a caller bug and must fail loudly, not by luck.
    with pytest.raises(ParameterError, match="pass a sequence"):
        db.query("SELECT id FROM items WHERE name = ?", "anchor")


# -- type inference and mismatches -------------------------------------------


def test_type_mismatch_rejected_eagerly(db):
    with pytest.raises(ParameterError, match="cannot bind 'abc' as BIGINT"):
        db.query("SELECT id FROM items WHERE id = ?", ["abc"])


def test_uninferable_type_needs_cast(db):
    with pytest.raises(ParameterError, match="CAST"):
        db.query("SELECT ? FROM items", [1])


def test_cast_escape_hatch(db):
    result = db.query("SELECT CAST(? AS BIGINT) AS v FROM items LIMIT 1",
                      [7])
    assert result.rows() == [(7,)]


def test_timestamp_param_accepts_iso_string(db):
    result = db.query(
        "SELECT count(*) FROM items WHERE seen >= ?",
        ["2010-01-12T12:00:00.000"],
    )
    assert result.scalar() == 2


def test_null_param_value(db):
    result = db.query("SELECT count(*) FROM items WHERE name = ?", [None])
    assert result.scalar() == 0  # NULL never equals anything


def test_numeric_promotion(db):
    # int value bound against a DOUBLE column coerces cleanly.
    result = db.query("SELECT count(*) FROM items WHERE price < ?", [2])
    assert result.scalar() == 2


# -- placeholders in compound predicates --------------------------------------


def test_params_in_in_list(db):
    result = db.query(
        "SELECT name FROM items WHERE id IN (?, ?, ?) ORDER BY id",
        [1, 3, 99],
    )
    assert result.rows() == [("anchor",), ("clamp",)]


def test_params_in_between(db):
    result = db.query(
        "SELECT id FROM items WHERE price BETWEEN :lo AND :hi ORDER BY id",
        {"lo": 0.5, "hi": 3.0},
    )
    assert result.rows() == [(1,), (3,)]


def test_param_as_in_operand_needs_cast(db):
    with pytest.raises(ReproError):
        db.query("SELECT id FROM items WHERE ? IN (1, 2)", [1])
    result = db.query(
        "SELECT count(*) FROM items WHERE CAST(? AS BIGINT) IN (1, 2)", [2]
    )
    assert result.scalar() == 4


# -- injection-shaped values bind as data --------------------------------------


def test_injection_shaped_string_binds_as_literal(db):
    hostile = "x' OR '1'='1"
    result = db.query("SELECT count(*) FROM items WHERE name = ?", [hostile])
    assert result.scalar() == 0  # matched as a literal value: no row


def test_quote_bearing_value_roundtrips(db):
    result = db.query("SELECT id FROM items WHERE name = ?", ["O'HARE"])
    assert result.rows() == [(4,)]


def test_injection_shaped_value_inserts_as_data(db):
    hostile = "'); DROP TABLE items; --"
    db.execute("INSERT INTO items (id, name) VALUES (?, ?)", [5, hostile])
    assert db.query("SELECT name FROM items WHERE id = 5").scalar() == hostile
    assert db.table("items").row_count == 5  # still here


# -- DML parameters ------------------------------------------------------------


def test_insert_update_delete_with_params(db):
    db.execute("INSERT INTO items (id, name, price) VALUES (?, ?, ?)",
               [10, "nut", 0.1])
    assert db.query("SELECT count(*) FROM items").scalar() == 5
    db.execute("UPDATE items SET price = :p WHERE id = :id",
               {"p": 0.2, "id": 10})
    assert db.query("SELECT price FROM items WHERE id = 10").scalar() == 0.2
    db.execute("DELETE FROM items WHERE id = ?", [10])
    assert db.query("SELECT count(*) FROM items").scalar() == 4


def test_ddl_with_params_rejected(db):
    with pytest.raises(ReproError):
        db.execute("CREATE VIEW v AS SELECT id FROM items WHERE id = ?",
                   [1])


# -- params and caching correctness -------------------------------------------


def test_recycler_never_crosses_param_values(db):
    # The same plan-cached aggregate re-executed with different values
    # must produce different results: recycler signatures embed the
    # bound values, so different bindings can never share an entry.
    sql = "SELECT count(*) FROM items WHERE price < ?"
    assert db.query(sql, [1.0]).scalar() == 1
    assert db.query(sql, [2.0]).scalar() == 2
    assert db.query(sql, [100.0]).scalar() == 4
    assert db.query(sql, [1.0]).scalar() == 1


def test_same_param_values_do_recycle(db):
    # Equal re-executions share the recycler entry (signature embeds the
    # value), so repeat prepared queries skip even the aggregation.
    sql = "SELECT count(*) FROM items WHERE price < ?"
    db.query(sql, [2.0])
    db.query(sql, [2.0])
    result, _report, trace = db.query_with_report(sql, [2.0])
    assert result.scalar() == 2
    assert any(t.get("op") == "recycler_hit" for t in trace)
    # ... while a different value still computes fresh.
    assert db.query(sql, [1.0]).scalar() == 1


def test_unparameterized_aggregate_still_recycles(db):
    sql = "SELECT sum(id) FROM items"
    assert db.query(sql).scalar() == 10
    db.query(sql)
    _result, _report, trace = db.query_with_report(sql)
    assert any(t.get("op") == "recycler_hit" for t in trace)


def test_explain_of_parameterized_query(db):
    plan = db.explain("SELECT id FROM items WHERE id = ?")
    assert "Param" in plan or "?" in plan


def test_interleaved_streams_keep_their_own_values(db):
    # Two cursors on one thread, same statement, different bound values,
    # fetched alternately: each must see only its own parameter.
    from repro.api import connect

    db.execute("CREATE TABLE seq (v BIGINT)")
    db.bulk_insert(("seq",), {"v": np.arange(1000)})
    conn = connect(db)
    a = conn.cursor().execute("SELECT v FROM seq WHERE v % 2 = ?",
                              [0], batch_rows=10)
    b = conn.cursor().execute("SELECT v FROM seq WHERE v % 2 = ?",
                              [1], batch_rows=10)
    for _ in range(50):
        row_a = a.fetchone()
        row_b = b.fetchone()
        assert row_a[0] % 2 == 0
        assert row_b[0] % 2 == 1
