"""Property-based cross-mode equivalence on randomised query windows.

Hypothesis drives random (station, channel, time-window, aggregate)
combinations through the lazy and eager warehouses; any divergence is a
correctness bug in lazy extraction, pruning, caching or the rewrite.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.seismology.warehouse import SeismicWarehouse
from repro.util.timefmt import format_iso8601, from_ymd

_DAY_START = from_ymd(2010, 1, 12, 22, 0)
_SPAN_US = 20 * 60 * 1_000_000  # the demo repo covers 22:00-22:20


@pytest.fixture(scope="module")
def mode_pair(demo_repo):
    lazy = SeismicWarehouse(demo_repo.root, mode="lazy")
    eager = SeismicWarehouse(demo_repo.root, mode="eager")
    return lazy, eager


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    station=st.sampled_from(["HGN", "DBN", "ISK"]),
    channel=st.sampled_from(["BHE", "BHZ"]),
    offset_s=st.integers(min_value=0, max_value=19 * 60),
    length_s=st.integers(min_value=1, max_value=120),
    aggregate=st.sampled_from(
        ["COUNT(*)", "SUM(D.sample_value)", "MIN(D.sample_value)",
         "MAX(D.sample_value)", "AVG(D.sample_value)"]
    ),
)
def test_random_window_equivalence(mode_pair, station, channel, offset_s,
                                   length_s, aggregate):
    lazy, eager = mode_pair
    start = _DAY_START + offset_s * 1_000_000
    end = min(start + length_s * 1_000_000, _DAY_START + _SPAN_US)
    sql = f"""SELECT {aggregate} FROM mseed.dataview
WHERE F.station = '{station}' AND F.channel = '{channel}'
AND D.sample_time >= '{format_iso8601(start)}'
AND D.sample_time < '{format_iso8601(end)}'"""
    lazy_value = lazy.query(sql).scalar()
    eager_value = eager.query(sql).scalar()
    if isinstance(lazy_value, float) and lazy_value is not None:
        assert lazy_value == pytest.approx(eager_value)
    else:
        assert lazy_value == eager_value


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    network=st.sampled_from(["NL", "KO", "GE", "XX"]),
    channel=st.sampled_from(["BHE", "BHZ", "LHZ"]),
)
def test_random_groupby_equivalence(mode_pair, network, channel):
    lazy, eager = mode_pair
    sql = f"""SELECT F.station, COUNT(*), MIN(D.sample_value)
FROM mseed.dataview
WHERE F.network = '{network}' AND F.channel = '{channel}'
GROUP BY F.station ORDER BY F.station"""
    assert lazy.query(sql).rows() == eager.query(sql).rows()


@pytest.mark.oracle
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    station=st.sampled_from(["HGN", "DBN", "ISK"]),
    channel=st.sampled_from(["BHE", "BHZ"]),
    offset_s=st.integers(min_value=0, max_value=19 * 60),
    length_s=st.integers(min_value=1, max_value=120),
    aggregate=st.sampled_from(
        ["COUNT(*)", "SUM(D.sample_value)", "AVG(D.sample_value)",
         "STDDEV_SAMP(D.sample_value)", "MEDIAN(D.sample_value)"]
    ),
)
def test_random_window_differential_oracle(mode_pair, station, channel,
                                           offset_s, length_s, aggregate):
    """The three executors agree bit-for-bit on randomised lazy windows
    (see ``tests/oracle.py``)."""
    from oracle import run_differential

    lazy, _eager = mode_pair
    start = _DAY_START + offset_s * 1_000_000
    end = min(start + length_s * 1_000_000, _DAY_START + _SPAN_US)
    sql = f"""SELECT F.station, {aggregate} FROM mseed.dataview
WHERE F.station = '{station}' AND F.channel = '{channel}'
AND D.sample_time >= '{format_iso8601(start)}'
AND D.sample_time < '{format_iso8601(end)}'
GROUP BY F.station ORDER BY F.station"""
    run_differential(lazy.db, sql)
