"""The CSV adapter: Lazy ETL over a completely different source format."""

import numpy as np
import pytest

from repro.db.exec.engine import Database
from repro.etl.csv_adapter import CsvDirAdapter, csv_filename, write_csv_file
from repro.etl.eager import EagerETL
from repro.etl.lazy import LazyETL
from repro.mseed.repository import Repository
from repro.util.timefmt import from_ymd

T0 = from_ymd(2026, 6, 1, 12, 0)
INTERVAL = 1_000_000  # 1 Hz


@pytest.fixture(scope="module")
def csv_repo(tmp_path_factory):
    root = tmp_path_factory.mktemp("csv-repo")
    rng = np.random.default_rng(6)
    for sensor in ("PUMP1", "PUMP2"):
        for channel in ("TEMP", "FLOW"):
            values = np.round(rng.normal(20, 3, 2500), 3)
            write_csv_file(
                root / csv_filename(sensor, channel, T0),
                sensor=sensor, channel=channel, start_time_us=T0,
                interval_us=INTERVAL, values=values,
            )
    return Repository(root, extension=".csv")


def _lazy_warehouse(csv_repo):
    db = Database()
    etl = LazyETL(db, csv_repo, CsvDirAdapter(block_rows=500),
                  schema="sensors")
    etl.create_tables()
    etl.initial_load()
    db.execute("""CREATE VIEW sensors.dataview AS
        SELECT F.file_location AS file_location, F.station, F.channel,
               R.seq_no, R.start_time, D.sample_time, D.sample_value
        FROM sensors.files AS F, sensors.records AS R, sensors.data AS D
        WHERE F.file_location = R.file_location
          AND R.file_location = D.file_location AND R.seq_no = D.seq_no""")
    return db, etl


def test_metadata_harvest_builds_blocks(csv_repo):
    db, etl = _lazy_warehouse(csv_repo)
    files = db.query("SELECT COUNT(*) FROM sensors.files").scalar()
    records = db.query("SELECT COUNT(*) FROM sensors.records").scalar()
    assert files == 4
    assert records == 4 * 5  # 2500 rows / 500-row blocks
    spans = db.query(
        "SELECT MIN(sample_count), MAX(sample_count) FROM sensors.records"
    ).first()
    assert spans == (500, 500)


def test_lazy_query_extracts_selectively(csv_repo):
    db, etl = _lazy_warehouse(csv_repo)
    csv_repo.reset_counters()
    avg = db.query("""
        SELECT AVG(D.sample_value) FROM sensors.dataview
        WHERE F.station = 'PUMP1' AND F.channel = 'TEMP'
        AND D.sample_time >= '2026-06-01T12:00:00'
        AND D.sample_time < '2026-06-01T12:05:00'""").scalar()
    assert avg == pytest.approx(20, abs=3)
    # Only one file touched, and (thanks to the positional map + record
    # pruning) only one 500-row block of it was parsed.
    assert db.last_report.rows_extracted == 500


def test_lazy_matches_eager_on_csv(csv_repo):
    lazy_db, _ = _lazy_warehouse(csv_repo)
    eager_db = Database()
    eager = EagerETL(eager_db, csv_repo, CsvDirAdapter(block_rows=500),
                     schema="sensors")
    eager.create_tables()
    eager.initial_load()
    sql = ("SELECT station, COUNT(*) AS n, AVG(sample_value) AS mean "
           "FROM sensors.files AS F, sensors.records AS R, sensors.data AS D "
           "WHERE F.file_location = R.file_location "
           "AND R.file_location = D.file_location AND R.seq_no = D.seq_no "
           "GROUP BY station ORDER BY station")
    lazy_rows = lazy_db.query(sql.replace(
        "sensors.files AS F, sensors.records AS R, sensors.data AS D",
        "sensors.files AS F, sensors.records AS R, sensors.data AS D"))
    eager_rows = eager_db.query(sql)
    assert lazy_rows.rows() == eager_rows.rows()


def test_cache_hits_on_csv(csv_repo):
    db, etl = _lazy_warehouse(csv_repo)
    sql = ("SELECT SUM(D.sample_value) FROM sensors.dataview "
           "WHERE F.station = 'PUMP2'")
    first = db.query(sql).scalar()
    csv_repo.reset_counters()
    second = db.query(sql).scalar()
    assert first == second


def test_filename_harvest_recognition(csv_repo):
    adapter = CsvDirAdapter()
    info = csv_repo.list_files()[0]
    meta = adapter.harvest_from_filename(info)
    assert meta is not None
    assert meta.station in ("PUMP1", "PUMP2")
    assert meta.channel in ("TEMP", "FLOW")


def test_foreign_filename_rejected(tmp_path):
    (tmp_path / "notes.csv").write_text("timestamp_us,value\n1,2\n")
    repo = Repository(tmp_path, extension=".csv")
    adapter = CsvDirAdapter()
    assert adapter.harvest_from_filename(repo.list_files()[0]) is None


def test_non_sensor_csv_rejected(tmp_path):
    path = tmp_path / "A_B_20260101.csv"
    path.write_text("wrong,header\n1,2\n")
    repo = Repository(tmp_path, extension=".csv")
    adapter = CsvDirAdapter()
    from repro.errors import ExtractionError

    with pytest.raises(ExtractionError):
        adapter.harvest_file(repo, repo.list_files()[0], per_record=True)


def test_extract_rebuilds_positional_map(csv_repo):
    # A fresh adapter (as after a process restart) can extract without a
    # prior harvest call.
    adapter = CsvDirAdapter(block_rows=500)
    uri = csv_repo.list_files()[0].uri
    extracted = adapter.extract(csv_repo, uri, [2],
                                ["sample_time", "sample_value"])
    assert extracted.seq_nos == [2]
    assert len(extracted.per_record[0]["sample_value"]) == 500
