"""Tests for the external-table / NoDB-style baseline."""

import pytest

from repro.etl.external import ExternalBinding, external_table_columns
from repro.etl.mseed_adapter import MSeedAdapter
from repro.seismology.queries import fig1_query1


def test_no_initial_loading(external_wh):
    assert external_wh.load_report.records_loaded == 0
    assert external_wh.load_report.bytes_read == 0
    raw = external_wh.db.table("mseed.raw")
    assert raw.row_count == 0  # the wide table is purely virtual


def test_every_query_scans_everything(external_wh, demo_repo):
    external_wh.repo.reset_counters()
    external_wh.query(fig1_query1())
    first_reads = external_wh.repo.reads
    assert first_reads >= len(demo_repo.entries)
    external_wh.query(fig1_query1())
    assert external_wh.repo.reads >= 2 * first_reads  # no caching at all


def test_scan_counter_advances(external_wh):
    binding = external_wh.pipeline.binding
    before = binding.scans
    external_wh.query("SELECT COUNT(*) FROM mseed.dataview")
    assert binding.scans == before + 1


def test_rows_extracted_reported(external_wh, demo_repo):
    external_wh.query("SELECT COUNT(*) FROM mseed.dataview")
    assert external_wh.db.last_report.rows_extracted == \
        demo_repo.total_samples


def test_external_trace_shows_full_scan(external_wh):
    external_wh.query(fig1_query1())
    ops = [e["op"] for e in external_wh.last_trace]
    assert "external_scan" in ops


def test_wide_table_schema_resolves_collisions():
    adapter = MSeedAdapter()
    columns = external_table_columns(adapter)
    names = [c.name for c in columns]
    assert len(names) == len(set(names))
    # Record attributes win collisions (start_time is the record's).
    assert "start_time" in names and "sample_time" in names


def test_external_binding_has_no_keys(external_wh):
    binding = external_wh.pipeline.binding
    assert binding.key_columns == ()
    assert binding.range_column is None
    with pytest.raises(NotImplementedError):
        binding.fetch({}, [], (None, None), [])


def test_external_alias_addressing_matches_lazy(external_wh, lazy_wh):
    sql = ("SELECT F.station, COUNT(*) FROM mseed.dataview "
           "WHERE D.sample_value > 0 AND R.seq_no > 0 "
           "GROUP BY F.station ORDER BY F.station")
    assert external_wh.query(sql).rows() == lazy_wh.query(sql).rows()


def test_external_never_recycles(external_wh):
    sql = "SELECT COUNT(*) FROM mseed.dataview"
    first = external_wh.query(sql).scalar()
    second = external_wh.query(sql).scalar()
    assert first == second
    # The binding's epoch advances per scan, so no recycler hit is possible.
    assert not any(e.get("op") == "recycler_hit"
                   for e in external_wh.last_trace)
