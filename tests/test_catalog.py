"""Catalog behaviour: schemas, name resolution, lazy bindings."""

import pytest

from repro.db.catalog import Catalog
from repro.db.table import ColumnSpec, TableSchema
from repro.db.types import DataType
from repro.errors import BindError, CatalogError


def _schema():
    return TableSchema(columns=[ColumnSpec("a", DataType.BIGINT)])


def test_default_schema_resolution():
    catalog = Catalog()
    catalog.create_table(("t",), _schema())
    assert catalog.table(("t",)).name == "main.t"
    assert catalog.table(("main", "t")) is catalog.table(("t",))


def test_schema_lifecycle():
    catalog = Catalog()
    catalog.create_schema("app")
    assert "app" in catalog.schema_names()
    catalog.create_schema("app", if_not_exists=True)
    with pytest.raises(CatalogError):
        catalog.create_schema("app")
    catalog.drop_schema("app")
    with pytest.raises(CatalogError):
        catalog.drop_schema("app")
    catalog.drop_schema("app", if_exists=True)


def test_default_schema_protected():
    catalog = Catalog()
    with pytest.raises(CatalogError):
        catalog.drop_schema("main")


def test_duplicate_table_rejected():
    catalog = Catalog()
    catalog.create_table(("t",), _schema())
    with pytest.raises(CatalogError):
        catalog.create_table(("t",), _schema())
    assert catalog.create_table(("t",), _schema(), if_not_exists=True)


def test_drop_table():
    catalog = Catalog()
    catalog.create_table(("t",), _schema())
    catalog.drop_table(("t",))
    with pytest.raises(CatalogError):
        catalog.table(("t",))
    catalog.drop_table(("t",), if_exists=True)
    with pytest.raises(CatalogError):
        catalog.drop_table(("t",))


def test_over_qualified_name_rejected():
    catalog = Catalog()
    with pytest.raises(CatalogError):
        catalog.split_name(("a", "b", "c"))


def test_lookup_unknown_is_bind_error():
    catalog = Catalog()
    with pytest.raises(BindError):
        catalog.lookup(("ghost",))


def test_lazy_binding_lifecycle():
    class FakeBinding:
        key_columns = ("k",)
        range_column = None
        cache_epoch = 0

        def fetch(self, *args):
            raise NotImplementedError

        def scan_all(self, *args):
            raise NotImplementedError

    catalog = Catalog()
    table = catalog.create_table(("d",), _schema())
    binding = FakeBinding()
    catalog.bind_lazy(("d",), binding)
    assert catalog.is_lazy("main.d")
    assert catalog.lazy_binding("main.d") is binding
    assert table.lazy_binding is binding
    catalog.unbind_lazy(("d",))
    assert not catalog.is_lazy("main.d")
    assert getattr(table, "lazy_binding", None) is None


def test_binding_removed_with_table():
    class FakeBinding:
        key_columns = ()
        range_column = None
        cache_epoch = 0

        def fetch(self, *args):
            raise NotImplementedError

        def scan_all(self, *args):
            raise NotImplementedError

    catalog = Catalog()
    catalog.create_table(("d",), _schema())
    catalog.bind_lazy(("d",), FakeBinding())
    catalog.drop_table(("d",))
    assert catalog.lazy_binding("main.d") is None
