"""Shared fixtures: synthetic repositories and warehouse factories.

Repository synthesis is the expensive part of the suite, so repositories
are session-scoped and shared; tests that mutate files copy them first.
"""

from __future__ import annotations

import shutil

import pytest

from repro.mseed.inventory import DEFAULT_INVENTORY, find_station
from repro.mseed.synthesize import RepositorySpec, build_repository


@pytest.fixture(scope="session")
def tiny_repo(tmp_path_factory):
    """Two NL stations, one channel, one 2-minute file each."""
    root = tmp_path_factory.mktemp("tiny-repo")
    spec = RepositorySpec(
        stations=DEFAULT_INVENTORY[:2],
        channel_codes=("BHZ",),
        files_per_stream=1,
        file_span_minutes=2,
        n_events=1,
    )
    manifest = build_repository(root, spec)
    return manifest


@pytest.fixture(scope="session")
def demo_repo(tmp_path_factory):
    """The paper-day repository: HGN/DBN (NL) + ISK (KO), BHE+BHZ,
    two 10-minute files per stream from 2010-01-12T22:00 — covers the
    Figure-1 query windows."""
    root = tmp_path_factory.mktemp("demo-repo")
    spec = RepositorySpec(
        stations=(
            find_station("HGN"),
            find_station("DBN"),
            find_station("ISK"),
        ),
        channel_codes=("BHE", "BHZ"),
        files_per_stream=2,
        file_span_minutes=10,
        n_events=2,
    )
    manifest = build_repository(root, spec)
    return manifest


@pytest.fixture()
def mutable_repo(demo_repo, tmp_path):
    """A private copy of the demo repository for mutation tests."""
    root = tmp_path / "repo"
    shutil.copytree(demo_repo.root, root)
    from repro.mseed.synthesize import RepositoryManifest, ManifestEntry

    entries = [
        ManifestEntry(**{**e.__dict__,
                         "path": e.path.replace(str(demo_repo.root), str(root))})
        for e in demo_repo.entries
    ]
    return RepositoryManifest(root=str(root), spec=demo_repo.spec,
                              entries=entries, events=demo_repo.events)


@pytest.fixture()
def lazy_wh(demo_repo):
    from repro.seismology.warehouse import SeismicWarehouse

    return SeismicWarehouse(demo_repo.root, mode="lazy")


@pytest.fixture(scope="session")
def eager_wh(demo_repo):
    """Session-scoped: eager loading is the expensive baseline; the
    returned warehouse must be treated read-only by tests."""
    from repro.seismology.warehouse import SeismicWarehouse

    return SeismicWarehouse(demo_repo.root, mode="eager")


@pytest.fixture()
def external_wh(demo_repo):
    from repro.seismology.warehouse import SeismicWarehouse

    return SeismicWarehouse(demo_repo.root, mode="external")


@pytest.fixture()
def differential_oracle():
    """The three-way executor identity check (see ``tests/oracle.py``)."""
    from oracle import run_differential

    return run_differential
