"""Metrics registry, exporters, snapshotter, slow-query log.

Includes the concurrency stress the registry's whole design hangs on:
counters must never lose updates under contention and a snapshot taken
mid-storm must be internally consistent.
"""

from __future__ import annotations

import json
import logging
import threading
import time

import pytest

from repro.obs.export import (
    label_cardinality,
    parse_exposition,
    render_prometheus,
    snapshot_json,
)
from repro.obs.metrics import (
    DEFAULT_MAX_LABEL_SETS,
    OVERFLOW_LABEL,
    MetricsError,
    MetricsRegistry,
    MetricsSnapshotter,
)
from repro.obs.slowlog import SlowQueryLog


# ---------------------------------------------------------------------------
# instruments
# ---------------------------------------------------------------------------


class TestCounter:
    def test_inc_and_value(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_test_total", "help")
        c.inc()
        c.inc(4)
        assert c.value() == 5

    def test_negative_increment_rejected(self):
        c = MetricsRegistry().counter("repro_test_total")
        with pytest.raises(MetricsError):
            c.inc(-1)

    def test_labelled_series_are_independent(self):
        c = MetricsRegistry().counter("repro_q_total", labels=("status",))
        c.inc(status="ok")
        c.inc(2, status="error")
        values = {s["labels"]["status"]: s["value"] for s in c.samples()}
        assert values == {"ok": 1, "error": 2}

    def test_unknown_label_rejected(self):
        c = MetricsRegistry().counter("repro_q_total", labels=("status",))
        with pytest.raises(MetricsError):
            c.inc(nope="x")

    def test_label_overflow_folds(self):
        c = MetricsRegistry().counter("repro_s_total", labels=("session",))
        for i in range(DEFAULT_MAX_LABEL_SETS + 25):
            c.inc(session=f"s{i}")
        values = {s["labels"]["session"]: s["value"] for s in c.samples()}
        assert values[OVERFLOW_LABEL] == 25
        # Bounded cardinality: the named sets plus the overflow bucket.
        assert len(values) == DEFAULT_MAX_LABEL_SETS + 1


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("repro_depth")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value() == 12

    def test_set_function_sampled_at_snapshot(self):
        reg = MetricsRegistry()
        g = reg.gauge("repro_live")
        state = {"v": 1.0}
        g.set_function(lambda: state["v"])
        state["v"] = 7.5
        (sample,) = g.samples()
        assert sample["labels"] == {} and sample["value"] == 7.5


class TestHistogram:
    def test_percentiles_exact_below_reservoir(self):
        h = MetricsRegistry().histogram("repro_lat_seconds")
        for v in range(1, 101):
            h.observe(v / 100)
        assert h.count() == 100
        # Nearest-rank: within one rank of the exact percentile.
        assert h.percentile(50) == pytest.approx(0.50, abs=0.011)
        assert h.percentile(95) == pytest.approx(0.95, abs=0.011)
        assert h.percentile(99) == pytest.approx(0.99, abs=0.011)

    def test_count_and_sum_exact_beyond_reservoir(self):
        h = MetricsRegistry().histogram("repro_lat_seconds")
        n = 5000  # > reservoir size: sampling kicks in, totals stay exact
        for _ in range(n):
            h.observe(2.0)
        (sample,) = h.samples()
        assert sample["count"] == n
        assert sample["sum"] == pytest.approx(2.0 * n)
        assert sample["p50"] == pytest.approx(2.0)


class TestRegistry:
    def test_get_or_create_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("repro_a_total") is reg.counter("repro_a_total")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("repro_a_total")
        with pytest.raises(MetricsError):
            reg.gauge("repro_a_total")

    def test_label_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("repro_a_total", labels=("x",))
        with pytest.raises(MetricsError):
            reg.counter("repro_a_total", labels=("y",))

    def test_collectors_merge_into_snapshot(self):
        reg = MetricsRegistry()
        handle = reg.register_collector(
            lambda: {"repro_cache_hits_total": 3, "repro_cache_entries": 9})
        snap = reg.snapshot()
        assert snap["repro_cache_hits_total"]["type"] == "counter"
        assert snap["repro_cache_entries"]["type"] == "gauge"
        reg.unregister_collector(handle)
        assert "repro_cache_hits_total" not in reg.snapshot()

    def test_failing_collector_skipped(self, caplog):
        reg = MetricsRegistry()
        reg.counter("repro_ok_total").inc()

        def broken():
            raise RuntimeError("boom")

        reg.register_collector(broken)
        with caplog.at_level(logging.ERROR, logger="repro.obs.metrics"):
            snap = reg.snapshot()
        assert "repro_ok_total" in snap
        assert any("collector" in r.message for r in caplog.records)


# ---------------------------------------------------------------------------
# exporters
# ---------------------------------------------------------------------------


class TestExport:
    def _registry(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        c = reg.counter("repro_q_total", "queries", labels=("status",))
        c.inc(3, status="ok")
        c.inc(status="error")
        reg.gauge("repro_depth", "queue depth").set(2)
        h = reg.histogram("repro_lat_seconds", "latency")
        for v in (0.1, 0.2, 0.3):
            h.observe(v)
        return reg

    def test_prometheus_round_trip(self):
        text = render_prometheus(self._registry())
        samples = parse_exposition(text)
        by_name = {}
        for name, labels, value in samples:
            by_name.setdefault(name, []).append((labels, value))
        assert ({"status": "ok"}, 3.0) in by_name["repro_q_total"]
        assert by_name["repro_depth"] == [({}, 2.0)]
        assert ({}, 3.0) in by_name["repro_lat_seconds_count"]
        quantiles = {lbl["quantile"]: v
                     for lbl, v in by_name["repro_lat_seconds"]}
        assert quantiles["0.5"] == pytest.approx(0.2)

    def test_parse_rejects_garbage(self):
        with pytest.raises(MetricsError):
            parse_exposition("this is { not exposition\n")

    def test_label_cardinality(self):
        card = label_cardinality(parse_exposition(
            render_prometheus(self._registry())))
        assert card["repro_q_total"] == 2
        assert card["repro_depth"] == 1
        # Quantile labels must not count toward series cardinality.
        assert card["repro_lat_seconds"] == 1

    def test_snapshot_json(self):
        payload = json.loads(snapshot_json(self._registry(), note="x"))
        assert payload["note"] == "x"
        assert payload["metrics"]["repro_depth"]["samples"][0]["value"] == 2

    # -- exposition escaping (format 0.0.4) regressions --------------------

    HOSTILE_LABELS = [
        'SELECT * FROM t WHERE a = "x" AND b = 1',   # quotes + equals
        "line1\nline2",                              # newline
        "C:\\temp\\dump",                            # backslashes
        "\\n",                                       # literal \ then n
        'mix="v",other={1,2}\\',                     # comma/braces/trailing \
        "SELECT s, count(*) FROM sys.queries GROUP BY s",
    ]

    def test_hostile_label_values_round_trip(self):
        # SQL fragments (and worse) as label values must render per the
        # text format and parse back byte-identically: a sequential
        # replace-chain unescaper corrupts "\\n" and an '='-counting
        # completeness check false-fails on the WHERE clause.
        reg = MetricsRegistry()
        c = reg.counter("repro_sql_total", "by statement", labels=("sql",))
        for value in self.HOSTILE_LABELS:
            c.inc(sql=value)
        samples = parse_exposition(render_prometheus(reg))
        seen = {labels["sql"] for name, labels, _v in samples
                if name == "repro_sql_total"}
        assert seen == set(self.HOSTILE_LABELS)

    def test_help_text_escapes_newline_and_backslash(self):
        reg = MetricsRegistry()
        reg.gauge("repro_g", "first\nsecond \\ third").set(1)
        text = render_prometheus(reg)
        (help_line,) = [l for l in text.splitlines()
                        if l.startswith("# HELP")]
        assert help_line == "# HELP repro_g first\\nsecond \\\\ third"
        # Still one logical line per sample: strict parse accepts it.
        assert parse_exposition(text) == [("repro_g", {}, 1.0)]

    def test_parser_rejects_unknown_or_trailing_escape(self):
        with pytest.raises(MetricsError):
            parse_exposition('m{a="bad\\q"} 1\n')
        with pytest.raises(MetricsError):
            parse_exposition('m{a="trailing\\"} 1\n')

    def test_parser_rejects_unseparated_label_pairs(self):
        with pytest.raises(MetricsError):
            parse_exposition('m{a="1"b="2"} 1\n')


# ---------------------------------------------------------------------------
# concurrency stress
# ---------------------------------------------------------------------------


class TestConcurrency:
    THREADS = 16
    INCS = 2000

    def test_no_lost_counter_updates(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_stress_total", labels=("worker",))
        h = reg.histogram("repro_stress_seconds")
        start = threading.Barrier(self.THREADS)

        def worker(n: int) -> None:
            start.wait()
            for _ in range(self.INCS):
                c.inc(worker=f"w{n % 4}")
                h.observe(0.001)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(self.THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = sum(s["value"] for s in c.samples())
        assert total == self.THREADS * self.INCS
        assert h.count() == self.THREADS * self.INCS

    def test_snapshot_consistent_under_writes(self):
        """Snapshots taken mid-storm never go backwards or tear."""
        reg = MetricsRegistry()
        c = reg.counter("repro_stress_total")
        stop = threading.Event()

        def writer() -> None:
            while not stop.is_set():
                c.inc()

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for t in threads:
            t.start()
        seen = []
        try:
            for _ in range(50):
                snap = reg.snapshot()
                (sample,) = snap["repro_stress_total"]["samples"]
                seen.append(sample["value"])
        finally:
            stop.set()
            for t in threads:
                t.join()
        assert all(a <= b for a, b in zip(seen, seen[1:]))
        assert seen[-1] <= c.value()


# ---------------------------------------------------------------------------
# snapshotter + slow-query log
# ---------------------------------------------------------------------------


class TestSnapshotter:
    def test_background_snapshots_and_history_bound(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total").inc()
        snapper = MetricsSnapshotter(reg, 0.01, history=5)
        snapper.start()
        time.sleep(0.08)
        snapper.stop()
        snaps = snapper.snapshots()
        assert 1 <= len(snaps) <= 5
        assert snaps[-1]["metrics"]["repro_x_total"]["samples"][0]["value"] == 1
        assert all(a["at"] <= b["at"] for a, b in zip(snaps, snaps[1:]))


class TestSlowQueryLog:
    def _observe(self, log: SlowQueryLog, total_s: float) -> bool:
        return log.observe(session_id="s1", sql="SELECT 1", total_s=total_s,
                           queued_s=0.0, execute_s=total_s)

    def test_threshold_gates(self):
        log = SlowQueryLog(0.5)
        assert self._observe(log, 0.1) is False
        assert self._observe(log, 0.9) is True
        assert len(log) == 1
        assert log.entries()[0]["total_s"] == pytest.approx(0.9)

    def test_capacity_bounded(self):
        log = SlowQueryLog(0.0, capacity=3)
        for i in range(6):
            self._observe(log, float(i))
        totals = [e["total_s"] for e in log.entries()]
        assert totals == [3.0, 4.0, 5.0]

    def test_structured_logging_record(self, caplog):
        log = SlowQueryLog(0.0)
        with caplog.at_level(logging.WARNING, logger="repro.obs.slowquery"):
            self._observe(log, 1.25)
        (record,) = caplog.records
        assert "slow query" in record.message
        assert record.slow_query["sql"] == "SELECT 1"

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            SlowQueryLog(-1.0)
