"""The query journal: ring bounds, durability, concurrent appends.

Satellite coverage for ``repro.obs.journal``: eviction order under the
ring-buffer capacity, byte-identical spill/restore across
``checkpoint()`` → warm start, and appends racing in from concurrent
service sessions.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs.journal import (
    DEFAULT_SESSION,
    QueryJournal,
    params_hash,
    query_context,
)
from repro.seismology.warehouse import SeismicWarehouse


def _entry(sql: str, **extra) -> dict:
    entry = {"sql": sql, "session": "t", "status": "ok"}
    entry.update(extra)
    return entry


# ---------------------------------------------------------------------------
# ring bounds
# ---------------------------------------------------------------------------


def test_ring_evicts_oldest_first_with_monotonic_ids():
    journal = QueryJournal(capacity=4)
    ids = [journal.append(_entry(f"q{i}")) for i in range(10)]
    assert ids == list(range(1, 11))
    kept = journal.entries()
    assert [e["sql"] for e in kept] == ["q6", "q7", "q8", "q9"]
    assert [e["id"] for e in kept] == [7, 8, 9, 10]
    stats = journal.stats()
    assert stats["recorded_total"] == 10
    assert stats["evicted_total"] == 6
    assert stats["entries"] == stats["capacity"] == 4


def test_append_does_not_alias_caller_dict():
    journal = QueryJournal(capacity=2)
    raw = _entry("q")
    journal.append(raw)
    raw["sql"] = "mutated"
    assert journal.entries()[0]["sql"] == "q"


def test_session_summary_aggregates_per_session():
    journal = QueryJournal(capacity=16)
    journal.append(_entry("a", session="alice", rows_out=3, total_s=0.5))
    journal.append(_entry("b", session="bob", status="error"))
    journal.append(_entry("c", session="alice", rows_out=2, total_s=0.25))
    by_session = {row["session"]: row
                  for row in journal.session_summary()}
    assert by_session["alice"]["queries"] == 2
    assert by_session["alice"]["rows_out"] == 5
    assert by_session["alice"]["total_s"] == pytest.approx(0.75)
    assert by_session["bob"]["errors"] == 1


# ---------------------------------------------------------------------------
# params_hash + query context
# ---------------------------------------------------------------------------


def test_params_hash_is_stable_and_discriminating():
    assert params_hash(None) == params_hash(()) == ""
    a = params_hash({"net": "NL", "k": 1})
    assert a == params_hash({"k": 1, "net": "NL"})  # order-insensitive
    assert a != params_hash({"net": "BE", "k": 1})
    assert params_hash((1, "x")) == params_hash((1, "x"))
    assert params_hash((1, "x")) != params_hash(("1", "x"))


def test_query_context_tags_recorded_entries():
    journal = QueryJournal(capacity=4)

    class _Report:
        pass

    report = _Report()
    for name in ("sql", "params_hash"):
        setattr(report, name, "")
    for name in ("parse_s", "bind_s", "optimize_s", "execute_s",
                 "total_s"):
        setattr(report, name, 0.0)
    for name in ("rows_out", "rows_extracted", "rows_extracted_here",
                 "rows_coalesced", "rows_served_eager", "pages_read",
                 "pages_skipped_zone"):
        setattr(report, name, 0)
    report.plan_cache_hit = False
    with query_context("carol", queued_s=0.125):
        journal.record_report(report)
    journal.record_report(report)
    first, second = journal.entries()
    assert first["session"] == "carol"
    assert first["queued_s"] == pytest.approx(0.125)
    assert second["session"] == DEFAULT_SESSION


# ---------------------------------------------------------------------------
# durability: checkpoint → warm start
# ---------------------------------------------------------------------------


def test_journal_spill_restore_identity(demo_repo, tmp_path):
    wh = SeismicWarehouse(demo_repo.root, mode="lazy",
                          storage_path=tmp_path / "store")
    wh.query("SELECT COUNT(*) AS n FROM mseed.files")
    with pytest.raises(Exception):
        wh.query("SELECT nope FROM mseed.files")
    wh.query("SELECT network, COUNT(*) FROM mseed.files GROUP BY network")
    state = wh.db.journal.export_state()
    wh.checkpoint()
    wh.close()

    warm = SeismicWarehouse(demo_repo.root, mode="lazy",
                            storage_path=tmp_path / "store")
    try:
        # Byte-identical restore: the exported state round-trips through
        # the manifest meta area unchanged (JSON-stable, id counter too).
        assert json.dumps(warm.db.journal.export_state(), sort_keys=True) \
            == json.dumps(state, sort_keys=True)
        # New queries continue the id sequence instead of reusing ids.
        warm.query("SELECT COUNT(*) AS n FROM mseed.files")
        tail = warm.db.journal.entries()[-1]
        assert tail["id"] == state["next_id"]
        statuses = dict(warm.query(
            "SELECT status, count(*) FROM sys.queries GROUP BY status"
        ).rows())
        assert statuses["error"] == 1
        assert statuses["ok"] >= 3
    finally:
        warm.close()


def test_restore_caps_to_capacity_tail(tmp_path):
    big = QueryJournal(capacity=64)
    for i in range(20):
        big.append(_entry(f"q{i}"))
    small = QueryJournal(capacity=5)
    assert small.import_state(big.export_state()) == 5
    assert [e["sql"] for e in small.entries()] == \
        [f"q{i}" for i in range(15, 20)]
    assert small.append(_entry("next")) == 21


def test_import_tolerates_missing_or_foreign_state():
    journal = QueryJournal(capacity=4)
    assert journal.import_state(None) == 0
    assert journal.import_state({"version": 999}) == 0
    assert len(journal) == 0


# ---------------------------------------------------------------------------
# concurrency: 16 service sessions appending at once
# ---------------------------------------------------------------------------


def test_concurrent_appends_from_16_service_sessions(demo_repo):
    wh = SeismicWarehouse(demo_repo.root, mode="lazy")
    per_session = 4
    with wh.serve(max_workers=8) as svc:
        sessions = [svc.session(f"s{i:02d}") for i in range(16)]
        futures = [
            session.submit("SELECT COUNT(*) AS n FROM mseed.files")
            for _ in range(per_session) for session in sessions
        ]
        for future in futures:
            assert future.result().report.rows_out == 1
        entries = wh.db.journal.entries()
    wh.close()
    mine = [e for e in entries if e["session"].startswith("s")]
    assert len(mine) == 16 * per_session
    # Ids are unique and strictly increasing in journal order.
    ids = [e["id"] for e in entries]
    assert ids == sorted(ids) and len(set(ids)) == len(ids)
    per = {}
    for e in mine:
        per[e["session"]] = per.get(e["session"], 0) + 1
    assert per == {f"s{i:02d}": per_session for i in range(16)}


def test_raw_journal_thread_safety():
    journal = QueryJournal(capacity=128)
    barrier = threading.Barrier(16)

    def hammer(tag: str) -> None:
        barrier.wait()
        for i in range(25):
            journal.append(_entry(f"{tag}-{i}", session=tag))

    threads = [threading.Thread(target=hammer, args=(f"t{i}",))
               for i in range(16)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    stats = journal.stats()
    assert stats["recorded_total"] == 400
    assert stats["entries"] == 128
    ids = [e["id"] for e in journal.entries()]
    assert ids == list(range(273, 401))
