"""The unified Connection/Cursor API: streaming, plan cache, services."""

import numpy as np
import pytest

from repro.api import Connection, PreparedStatement, connect
from repro.db.exec.engine import Database
from repro.db.exec.result import Result
from repro.db.column import Column
from repro.db.types import DataType
from repro.errors import ExecutionError, ReproError


@pytest.fixture()
def db():
    database = Database()
    database.execute("CREATE TABLE nums (v BIGINT, tag VARCHAR)")
    database.bulk_insert(("nums",), {
        "v": np.arange(10_000),
        "tag": np.array(["even" if i % 2 == 0 else "odd"
                         for i in range(10_000)], dtype=object),
    })
    return database


@pytest.fixture()
def conn(db):
    return connect(db)


# -- connection basics --------------------------------------------------------


def test_connect_accepts_database_and_warehouse(db, lazy_wh):
    assert isinstance(connect(db), Connection)
    assert isinstance(connect(lazy_wh), Connection)
    assert isinstance(lazy_wh.connect(), Connection)
    with pytest.raises(ExecutionError):
        connect(object())


def test_closed_connection_refuses(conn):
    conn.close()
    with pytest.raises(ExecutionError, match="closed"):
        conn.cursor()


def test_connection_context_manager(db):
    with connect(db) as c:
        assert c.execute("SELECT count(*) FROM nums").scalar() == 10_000
    assert c.closed


# -- cursor fetch protocol ----------------------------------------------------


def test_description_and_dtypes(conn):
    cur = conn.execute("SELECT v, tag FROM nums LIMIT 1")
    assert [d[0] for d in cur.description] == ["v", "tag"]
    assert [d[1] for d in cur.description] == [DataType.BIGINT,
                                              DataType.VARCHAR]


def test_fetchone_fetchmany_fetchall(conn):
    cur = conn.cursor()
    cur.execute("SELECT v FROM nums WHERE v < 5 ORDER BY v")
    assert cur.fetchone() == (0,)
    assert cur.fetchmany(2) == [(1,), (2,)]
    assert cur.fetchall() == [(3,), (4,)]
    assert cur.fetchone() is None
    assert cur.fetchmany(3) == []
    assert cur.rowcount == 5


def test_fetchmany_uses_arraysize(conn):
    cur = conn.cursor()
    cur.arraysize = 3
    cur.execute("SELECT v FROM nums WHERE v < 10 ORDER BY v")
    assert len(cur.fetchmany()) == 3


def test_iteration(conn):
    cur = conn.execute("SELECT v FROM nums WHERE v < 4 ORDER BY v")
    assert [row[0] for row in cur] == [0, 1, 2, 3]


def test_scalar_helpers_and_errors(conn):
    assert conn.execute("SELECT sum(v) FROM nums").scalar() == \
        sum(range(10_000))
    with pytest.raises(ExecutionError, match="single-column"):
        conn.execute("SELECT v, tag FROM nums").scalar()
    with pytest.raises(ExecutionError, match="empty"):
        conn.execute("SELECT v FROM nums WHERE v < 0").scalar()
    with pytest.raises(ExecutionError, match="multi-row"):
        conn.execute("SELECT v FROM nums WHERE v < 2").scalar()


def test_fetch_before_execute_raises(conn):
    with pytest.raises(ExecutionError, match="no statement"):
        conn.cursor().fetchall()


def test_closed_cursor_refuses(conn):
    cur = conn.execute("SELECT v FROM nums LIMIT 1")
    cur.close()
    with pytest.raises(ExecutionError, match="closed"):
        cur.fetchone()


# -- streaming ----------------------------------------------------------------


def test_first_batch_arrives_before_full_materialisation(conn):
    # The tentpole acceptance assertion: a cursor over a full-table scan
    # yields its first rows while most of the table has NOT been pulled
    # through the engine.
    cur = conn.cursor()
    cur.execute("SELECT v, tag FROM nums", batch_rows=500)
    first = cur.fetchmany(10)
    assert len(first) == 10
    assert cur.rows_streamed == 500          # one batch, not the table
    assert cur.rows_streamed < 10_000
    assert cur.rowcount == -1                # stream still open
    assert len(first) + len(cur.fetchall()) == 10_000
    assert cur.rowcount == 10_000            # known once exhausted


def test_streaming_filter_and_projection(conn):
    cur = conn.cursor()
    cur.execute("SELECT v * 2 AS d FROM nums WHERE tag = 'even'",
                batch_rows=256)
    head = cur.fetchmany(4)
    assert head == [(0,), (4,), (8,), (12,)]
    assert cur.rows_streamed < 5_000


def test_limit_stops_pulling_early(conn):
    cur = conn.cursor()
    cur.execute("SELECT v FROM nums LIMIT 7", batch_rows=100)
    assert len(cur.fetchall()) == 7
    assert cur.rows_streamed == 7


def test_abandoned_stream_finalises_report(conn):
    cur = conn.cursor()
    cur.execute("SELECT v FROM nums", batch_rows=100)
    cur.fetchmany(5)
    report = cur.report
    cur.execute("SELECT count(*) FROM nums")  # implicitly closes the stream
    assert report.rows_out == 100  # one pulled batch was accounted
    assert cur.scalar() == 10_000


def test_streaming_results_match_materialised(conn, db):
    sql = "SELECT tag, count(*) AS n FROM nums GROUP BY tag ORDER BY tag"
    assert conn.execute(sql).fetchall() == db.query(sql).rows()


# -- per-cursor reports and the plan cache ------------------------------------


def test_per_cursor_report(conn):
    cur = conn.execute("SELECT count(*) FROM nums WHERE v >= ?", [5_000])
    cur.fetchall()
    assert cur.report.rows_out == 1
    assert cur.report.sql.startswith("SELECT count(*)")
    assert not cur.report.plan_cache_hit
    cur.execute("SELECT count(*) FROM nums WHERE v >= ?", [9_000])
    assert cur.report.plan_cache_hit
    assert cur.report.bind_s == 0.0 and cur.report.optimize_s == 0.0
    assert cur.scalar() == 1_000


def test_plan_cache_invalidated_by_dml(conn, db):
    sql = "SELECT count(*) FROM nums"
    assert conn.execute(sql).scalar() == 10_000
    assert conn.execute(sql).report.plan_cache_hit
    db.execute("INSERT INTO nums VALUES (77777, 'odd')")
    cur = conn.execute(sql)
    assert not cur.report.plan_cache_hit  # recompiled after DML
    assert cur.scalar() == 10_001


def test_plan_cache_invalidated_by_ddl(conn, db):
    sql = "SELECT count(*) FROM nums"
    conn.execute(sql)
    assert conn.execute(sql).report.plan_cache_hit
    db.execute("CREATE TABLE other (x BIGINT)")
    assert not conn.execute(sql).report.plan_cache_hit


def test_plan_cache_bounded(db):
    small = Database(plan_cache_size=4)
    small.execute("CREATE TABLE t (a BIGINT)")
    small.execute("INSERT INTO t VALUES (1)")
    for i in range(10):
        small.query(f"SELECT a + {i} FROM t")
    assert small.plan_cache_len() <= 4


# -- DML / DDL through cursors -------------------------------------------------


def test_dml_rowcount_and_no_result_set(conn):
    cur = conn.execute("DELETE FROM nums WHERE v >= 9995")
    assert cur.rowcount == 5
    assert cur.description is None
    with pytest.raises(ExecutionError, match="did not produce"):
        cur.fetchall()


def test_executemany_inserts(conn):
    cur = conn.cursor()
    cur.executemany("INSERT INTO nums VALUES (?, ?)",
                    [[100_001, "big"], [100_002, "big"], [100_003, "big"]])
    assert cur.rowcount == 3  # total across the batch
    assert conn.execute(
        "SELECT count(*) FROM nums WHERE tag = 'big'").scalar() == 3


def test_executemany_parses_once(conn):
    cur = conn.cursor()
    cur.executemany("INSERT INTO nums VALUES (?, ?)",
                    [[200_001, "batch"], [200_002, "batch"]])
    # The second (and every later) execution reuses the cached parse.
    assert cur.report.plan_cache_hit


def _counting_cursor(rowcounts):
    """A cursor over a fake runner yielding fixed per-run rowcounts."""
    from repro.db.exec.engine import CompletedQuery, QueryReport

    runs = iter(rowcounts)

    def runner(_sql, _params, _batch_rows):
        return CompletedQuery(Result([], []), QueryReport(), [],
                              is_rowset=False, rowcount=next(runs))

    from repro.api.cursor import Cursor

    return Cursor(runner)


def test_executemany_indeterminate_run_poisons_total():
    """DB-API: one -1 constituent makes the whole batch total -1.

    The old accounting silently *skipped* -1 runs and summed the rest,
    under-reporting the batch.
    """
    cur = _counting_cursor([5, -1, 3])
    cur.executemany("STMT", [None, None, None])
    assert cur.rowcount == -1


def test_executemany_sums_determinate_runs():
    cur = _counting_cursor([5, 0, 3])
    cur.executemany("STMT", [None, None, None])
    assert cur.rowcount == 8


def test_executemany_all_indeterminate():
    cur = _counting_cursor([-1, -1])
    cur.executemany("STMT", [None, None])
    assert cur.rowcount == -1


def test_executemany_empty_sequence_leaves_rowcount_untouched():
    cur = _counting_cursor([7])
    cur.executemany("STMT", [None])
    assert cur.rowcount == 7
    cur.executemany("STMT", [])  # nothing ran: prior state stands
    assert cur.rowcount == 7


def test_executemany_select_batch_is_indeterminate(conn):
    # Streaming SELECTs report -1 until exhausted; a batch of them must
    # stay -1 rather than summing to a misleading 0.
    cur = conn.cursor()
    cur.executemany("SELECT v FROM nums WHERE v < ?", [[5], [10]])
    assert cur.rowcount == -1
    assert len(cur.fetchall()) == 10  # the last run is still consumable


def test_explain_through_cursor(conn):
    cur = conn.execute("EXPLAIN SELECT count(*) FROM nums")
    rows = cur.fetchall()
    assert len(rows) == 1 and "physical plan" in rows[0][0]


# -- prepared statements -------------------------------------------------------


def test_prepared_statement_introspection(conn):
    stmt = conn.prepare("SELECT v FROM nums WHERE v = :target")
    assert isinstance(stmt, PreparedStatement)
    assert stmt.param_style == "named"
    assert stmt.param_names == ("target",)
    stmt2 = conn.prepare("SELECT v FROM nums WHERE v > ? AND v < ?")
    assert stmt2.param_style == "positional"
    assert stmt2.param_count == 2


def test_prepared_statement_compile_errors_surface_early(conn):
    with pytest.raises(ReproError):
        conn.prepare("SELECT nope FROM nums")


def test_prepared_execution_hits_plan_cache(conn):
    stmt = conn.prepare("SELECT count(*) FROM nums WHERE v < ?")
    cur = stmt.execute([10])
    assert cur.report.plan_cache_hit  # prepare() itself compiled it
    assert cur.scalar() == 10
    assert stmt.execute([100]).scalar() == 100
    assert stmt.query([3]).scalar() == 3


# -- Result ergonomics (satellite) ---------------------------------------------


def test_result_scalar_errors_are_clear():
    empty = Result(["v"], [Column.from_values(DataType.BIGINT, [])])
    with pytest.raises(ExecutionError, match="scalar"):
        empty.scalar()
    with pytest.raises(ExecutionError, match="first"):
        empty.first()
    wide = Result(["a", "b"], [Column.from_values(DataType.BIGINT, [1]),
                               Column.from_values(DataType.BIGINT, [2])])
    with pytest.raises(ExecutionError, match="1x2"):
        wide.scalar()
    tall = Result(["a"], [Column.from_values(DataType.BIGINT, [1, 2])])
    with pytest.raises(ExecutionError, match="2x1"):
        tall.scalar()
    # Every shape error is a ReproError, never a bare IndexError.
    for result in (empty, wide, tall):
        try:
            result.scalar()
        except ReproError:
            pass


def test_zero_column_result_is_well_behaved():
    nothing = Result([], [])
    assert nothing.row_count == 0
    assert nothing.rows() == []
    with pytest.raises(ExecutionError):
        nothing.scalar()


# -- the service exposes the same cursor protocol ------------------------------


def test_service_session_cursor(lazy_wh):
    with lazy_wh.serve(max_workers=2) as svc:
        session = svc.session("api-test")
        cur = session.cursor()
        cur.execute("SELECT count(*) FROM mseed.records")
        total = cur.scalar()
        assert total > 0
        assert cur.report.rows_out == 1
        cur.execute(
            "SELECT count(*) FROM mseed.files AS F WHERE F.network = ?",
            ["NL"],
        )
        assert cur.scalar() > 0
        assert cur.report.sql.startswith("SELECT count(*)")
    assert session.outcomes  # cursor executions are recorded per session


def test_service_cursor_rejects_ddl_clearly(lazy_wh):
    from repro.errors import ServiceError

    with lazy_wh.serve(max_workers=1) as svc:
        cur = svc.session("scoped").cursor()
        with pytest.raises(ServiceError, match="queries only"):
            cur.execute("CREATE SCHEMA scratch")


def test_service_cursor_matches_direct_connection(lazy_wh):
    sql = ("SELECT F.station, count(*) AS n FROM mseed.files AS F "
           "GROUP BY F.station ORDER BY F.station")
    direct = lazy_wh.connect().execute(sql).fetchall()
    with lazy_wh.serve(max_workers=2) as svc:
        served = svc.session("cmp").cursor().execute(sql).fetchall()
    assert served == direct


# -- warehouse-level integration ----------------------------------------------


def test_parameterised_window_prunes_extraction_like_literals(lazy_wh):
    # Dynamic time bounds: a prepared Figure-1 Q1 must extract exactly
    # the records the literal form extracts — parameter values resolve
    # into the metadata pruning window at execution time.
    from repro.seismology.queries import fig1_query1, fig1_query1_template

    values = {
        "station": "ISK", "channel": "BHE",
        "day_start": "2010-01-12T00:00:00.000",
        "day_end": "2010-01-12T23:59:59.999",
        "window_start": "2010-01-12T22:15:00.000",
        "window_end": "2010-01-12T22:15:02.000",
    }
    literal_result, literal_report, _ = lazy_wh.db.query_with_report(
        fig1_query1())
    fresh = lazy_wh.connect()  # same warehouse: caches are shared
    lazy_wh.cache.clear()      # force re-extraction for a fair count
    cur = fresh.cursor().execute(fig1_query1_template(), values)
    rows = cur.fetchall()
    assert rows == literal_result.rows()
    assert cur.report.rows_extracted == literal_report.rows_extracted


def test_warehouse_parameterised_dataview_query(lazy_wh):
    from repro.seismology.queries import fig1_query2, fig1_query2_template

    conn = lazy_wh.connect()
    stmt = conn.prepare(fig1_query2_template())
    via_params = stmt.execute(
        {"network": "NL", "channel": "BHZ"}).fetchall()
    via_literals = lazy_wh.query(
        fig1_query2(network="NL", channel="BHZ")).rows()
    assert sorted(via_params) == sorted(via_literals)
    second = stmt.execute({"network": "KO", "channel": "BHE"})
    assert second.report.plan_cache_hit
    assert sorted(second.fetchall()) == sorted(
        lazy_wh.query(fig1_query2(network="KO", channel="BHE")).rows())
