#!/usr/bin/env python3
"""Concurrent serving: many client sessions, one lazy warehouse.

Builds a small synthetic mSEED repository, opens a lazy warehouse and
serves it through :class:`WarehouseService`: four "dashboard" sessions
fire distinct aggregates over the same streams at the same time.  The
single-flight coalescer makes them pay for each (file, record) range's
extraction exactly once — the per-session reports show who extracted and
who shared.

Run:  python examples/concurrent_service.py
"""

import tempfile

from repro import SeismicWarehouse, build_repository
from repro.mseed.synthesize import RepositorySpec


def main() -> None:
    root = tempfile.mkdtemp(prefix="lazyetl-service-")
    print(f"1. synthesising an mSEED repository under {root} ...")
    manifest = build_repository(root, RepositorySpec(files_per_stream=2))
    streams = sorted({(e.station, e.channel) for e in manifest.entries})[:4]

    print("\n2. opening a lazy warehouse and starting the query service ...")
    warehouse = SeismicWarehouse(root, mode="lazy")
    with warehouse.serve(max_workers=4, extract_workers=2) as service:
        print(f"   {service!r}")

        print("\n3. four sessions, distinct aggregates, same streams, "
              "all at once:")
        aggs = ["MIN", "MAX", "AVG", "SUM"]
        sessions = [service.session(f"dashboard-{agg.lower()}")
                    for agg in aggs]
        futures = []
        for station, channel in streams:
            for agg, session in zip(aggs, sessions):
                futures.append(session.submit(
                    f"SELECT {agg}(D.sample_value), COUNT(*) "
                    f"FROM mseed.dataview WHERE F.station = '{station}' "
                    f"AND F.channel = '{channel}'"
                ))
        outcomes = [future.result() for future in futures]

        print(f"   {len(outcomes)} queries answered")
        for session in sessions:
            mine = sum(o.rows_extracted_here for o in outcomes
                       if o.session_id == session.session_id)
            shared = sum(o.rows_coalesced for o in outcomes
                         if o.session_id == session.session_id)
            print(f"   {session.session_id:>16}: extracted {mine:>7,} rows "
                  f"itself, shared {shared:>7,} rows from other sessions")

        stats = service.stats()
        print("\n4. service counters:")
        print(f"   completed={stats.completed}  failed={stats.failed}  "
              f"p50={stats.percentile(50) * 1e3:.0f} ms  "
              f"p99={stats.percentile(99) * 1e3:.0f} ms")
        if stats.coalescer is not None:
            print(f"   coalescer: {stats.coalescer.snapshot()}")

    print("\n5. service closed; the warehouse still answers directly:")
    count = warehouse.query("SELECT COUNT(*) FROM mseed.records").scalar()
    print(f"   {count} record-metadata rows remain queryable")


if __name__ == "__main__":
    main()
