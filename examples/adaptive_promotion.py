#!/usr/bin/env python3
"""Adaptive lazy→eager promotion: the crossover, closed at runtime.

Builds a small synthetic mSEED repository, opens a lazy warehouse with
storage attached, and runs a skewed workload: one hot stream queried
over and over, the rest barely touched.  The access-heat tracker notices,
``promote()`` materializes the hot records into promoted segments, and
the same query then serves from disk pages instead of re-extracting —
first-query latency stays lazy-grade, steady-state approaches eager.
The promotion state survives a checkpoint: a fresh warehouse answers the
hot query with zero re-extraction.

Run:  python examples/adaptive_promotion.py
"""

import tempfile
import time

from repro import SeismicWarehouse, build_repository
from repro.mseed.synthesize import RepositorySpec


def timed(fn):
    started = time.perf_counter()
    result = fn()
    return (time.perf_counter() - started) * 1e3, result


def main() -> None:
    root = tempfile.mkdtemp(prefix="lazyetl-adaptive-")
    store = tempfile.mkdtemp(prefix="lazyetl-adaptive-store-")
    print(f"1. synthesising an mSEED repository under {root} ...")
    manifest = build_repository(root, RepositorySpec(files_per_stream=2))
    station, channel = sorted({(e.station, e.channel)
                               for e in manifest.entries})[0]

    # A deliberately tiny extraction cache: the regime where pure lazy
    # re-extracts every repeat (and eager loading would have won E7).
    print("\n2. opening a lazy warehouse with storage attached ...")
    warehouse = SeismicWarehouse(root, mode="lazy", storage_path=store,
                                 cache_budget_bytes=64 * 1024,
                                 enable_recycler=False)
    hot_query = (f"SELECT MIN(D.sample_value), MAX(D.sample_value), "
                 f"COUNT(*) FROM mseed.dataview "
                 f"WHERE F.station = '{station}' AND F.channel = '{channel}'")

    cold_ms, _ = timed(lambda: warehouse.query(hot_query))
    print(f"   cold first query ({station}.{channel}): {cold_ms:.1f} ms "
          "— lazy-grade, nothing was loaded up front")

    print("\n3. the workload keeps hammering the same stream ...")
    for _ in range(3):
        repeat_ms, _ = timed(lambda: warehouse.query(hot_query))
    print(f"   pure-lazy repeat: {repeat_ms:.1f} ms (the tiny cache "
          "thrashes, every repeat re-extracts)")
    print(f"   heat tracker now knows {len(warehouse.heat)} hot units")

    print("\n4. promoting the hot units into eager segments ...")
    report = warehouse.promote(budget_bytes=64 * 1024 * 1024)
    print(f"   promoted {report.promoted_units} units "
          f"({report.disk_bytes:,} bytes on disk; "
          f"{report.from_cache_units} from cache, "
          f"{report.extracted_units} extracted in the background)")

    hot_ms, _ = timed(lambda: warehouse.query(hot_query))
    qr = warehouse.db.last_report
    print(f"   promoted repeat: {hot_ms:.1f} ms — "
          f"{qr.rows_served_eager:,} rows served from {qr.promotions} "
          f"promoted units, {qr.rows_extracted_here} rows re-extracted")
    print(f"   speedup vs pure-lazy repeat: {repeat_ms / hot_ms:.1f}x")

    print("\n5. EXPLAIN shows the promotion state at the rewrite point:")
    plan = warehouse.explain(hot_query)
    lazy_line = next(line for line in plan.splitlines()
                     if "LazyFetch" in line and "promoted_units" in line)
    print(f"   {lazy_line.strip()}")

    print("\n6. checkpoint, then a fresh warehouse (new process) ...")
    warehouse.checkpoint()
    warm = SeismicWarehouse(root, mode="lazy", storage_path=store,
                            cache_budget_bytes=64 * 1024,
                            enable_recycler=False)
    warm_ms, _ = timed(lambda: warm.query(hot_query))
    wr = warm.db.last_report
    print(f"   warm hot query: {warm_ms:.1f} ms, "
          f"{wr.rows_served_eager:,} rows eager, "
          f"{wr.rows_extracted_here} re-extracted "
          "(promotion survives restarts)")

    print("\n7. under a service, promotion runs continuously in the "
          "background:")
    print("   with warehouse.serve(promote=True, "
          "promote_budget_bytes=...) as svc: ...")


if __name__ == "__main__":
    main()
