#!/usr/bin/env python3
"""Observability tour: metrics, EXPLAIN ANALYZE, spans, slow queries.

Opens a lazy warehouse, runs a few queries, and shows every lens the
warehouse offers on its own behaviour: the Prometheus text export, the
JSON metrics snapshot, EXPLAIN ANALYZE's annotated operator tree,
per-query span trees, the served slow-query log, the SQL-queryable
``sys.*`` system tables, and the HTTP observability endpoint.

Run:  PYTHONPATH=src python examples/observability.py
"""

import json
import tempfile
import urllib.request

from repro import SeismicWarehouse, build_repository, fig1_query2
from repro.mseed.synthesize import RepositorySpec


def main() -> None:
    root = tempfile.mkdtemp(prefix="lazyetl-obs-")
    print(f"1. synthesising an mSEED repository under {root} ...")
    build_repository(root, RepositorySpec(files_per_stream=2))

    # trace_spans=True makes every query carry a span tree in its report.
    warehouse = SeismicWarehouse(root, mode="lazy", trace_spans=True)

    print("\n2. EXPLAIN ANALYZE — the plan as it actually executed:")
    print(warehouse.explain_analyze(fig1_query2()))

    print("\n3. the same query's span tree (JSON-exportable):")
    warehouse.query(fig1_query2())
    spans = warehouse.db.last_report.spans

    def show(span: dict, depth: int = 0) -> None:
        print(f"   {'  ' * depth}{span['name']:<24} "
              f"{span.get('elapsed_s', 0) * 1e3:8.3f} ms")
        for child in span.get("children", ()):
            show(child, depth + 1)

    show(spans)

    print("\n4. one scrape covers storage, ETL and compilation "
          "(Prometheus text format):")
    for line in warehouse.metrics_text().splitlines():
        if line.startswith(("repro_cache_hits", "repro_extract_rows",
                            "repro_plan_cache", "# TYPE repro_cache_hits")):
            print(f"   {line}")

    print("\n5. served warehouses add latency histograms, a slow-query "
          "log\n   and an HTTP endpoint (http_port=0 binds ephemerally):")
    with warehouse.serve(max_workers=2, slow_query_s=1e-6,
                         metrics_interval_s=0.05, http_port=0) as service:
        for session in ("alice", "bob", "alice"):
            service.query(fig1_query2(), session=session)
        snapshot = warehouse.metrics()
        for sample in snapshot["repro_query_seconds"]["samples"]:
            print(f"   session={sample['labels']['session']:<6} "
                  f"n={sample['count']}  p95={sample['p95'] * 1e3:.2f} ms")
        slowest = max(service.slow_log.entries(),
                      key=lambda e: e["total_s"])
        print(f"   slowest: {slowest['total_s'] * 1e3:.2f} ms on "
              f"{slowest['session']} (journal id {slowest['journal_id']})")

        print("\n6. the warehouse introspects itself in SQL — sys.* "
              "system tables:")
        for row in warehouse.query(
                "SELECT session, status, count(*) AS n, "
                "max(execute_s) AS slowest_s "
                "FROM sys.queries GROUP BY session, status "
                "ORDER BY session").rows():
            print(f"   session={row[0]:<6} status={row[1]:<5} "
                  f"n={row[2]}  slowest={row[3] * 1e3:.2f} ms")

        print("\n7. the same surface over HTTP — scrape /metrics, "
              "query /sys/<table>:")
        with urllib.request.urlopen(f"{service.http.url}/metrics",
                                    timeout=10) as resp:
            families = [line for line in resp.read().decode().splitlines()
                        if line.startswith("# TYPE")]
        print(f"   GET /metrics -> {len(families)} metric families")
        with urllib.request.urlopen(f"{service.http.url}/sys/sessions",
                                    timeout=10) as resp:
            sessions = json.load(resp)["rows"]
        for row in sessions:
            print(f"   GET /sys/sessions -> {row['session']}: "
                  f"{row['queries']} queries")

    print("\n8. metrics_json() bundles a snapshot for files/dashboards:")
    payload = json.loads(warehouse.metrics_json(run="observability-demo"))
    print(f"   {len(payload['metrics'])} metric families, "
          f"run={payload['run']!r}")


if __name__ == "__main__":
    main()
