#!/usr/bin/env python3
"""The demonstration scenario (§4) as a console tour.

Walks through the eight numbered capabilities of the paper's GUI
(Figure 2), printing what each panel would show:

 (1) initial loading of only metadata,
 (2) browsing metadata and navigating the data,
 (3) comparing performance against eager ETL,
 (4) observing query plans and their compile-time changes,
 (5) observing which files are lazily extracted,
 (6) observing the plans generated on the fly (run-time rewriting),
 (7) observing the cache contents and lazy updates,
 (8) looking through the operation log.

Run:  python examples/demo_tour.py
"""

import tempfile
import time

from repro import SeismicWarehouse, build_repository, fig1_query1
from repro.mseed.synthesize import RepositorySpec
from repro.seismology import browse


def banner(number: int, title: str) -> None:
    print(f"\n{'=' * 72}\n({number}) {title}\n{'=' * 72}")


def main() -> None:
    root = tempfile.mkdtemp(prefix="lazyetl-demo-")
    manifest = build_repository(root, RepositorySpec(files_per_stream=2))

    banner(1, "initial loading of only metadata from an mSEED repository")
    started = time.perf_counter()
    wh = SeismicWarehouse(root, mode="lazy")
    elapsed = time.perf_counter() - started
    report = wh.load_report
    print(f"repository: {len(manifest.entries)} files / "
          f"{manifest.total_samples:,} samples")
    print(f"loaded in {elapsed * 1e3:.0f} ms: {report.files_listed} file rows, "
          f"{report.records_loaded} record rows, 0 samples "
          f"({report.bytes_read:,} bytes of headers read)")
    print("the warehouse is instantly ready for analysis queries.")

    banner(2, "browsing the metadata and navigating through the data")
    print(browse.station_overview(wh))
    files = browse.file_listing(wh, station="ISK", channel="BHE")
    print(f"\ndrill-down into ISK.BHE: {len(files)} files; records of the "
          "first file:")
    for row in browse.record_listing(wh, files[0][0])[:5]:
        print(f"  seq={row[0]} start={row[1]} samples={row[4]}")

    banner(3, "comparing the performance to the eager ETL approach")
    started = time.perf_counter()
    eager = SeismicWarehouse(root, mode="eager")
    eager_load = time.perf_counter() - started
    print(f"eager initial load: {eager_load:.2f} s "
          f"(vs lazy {elapsed * 1e3:.0f} ms — "
          f"{eager_load / max(elapsed, 1e-9):.0f}x slower to first answer)")

    banner(4, "observing the query plans and the changes on them")
    sql = fig1_query1()
    print("query:\n" + sql + "\n")
    print(wh.explain(sql))

    banner(5, "observing the files containing required actual data")
    started = time.perf_counter()
    result = wh.query(sql)
    print(f"answer: {result.rows()} in "
          f"{(time.perf_counter() - started) * 1e3:.0f} ms")
    print("files lazily extracted for this query:")
    for uri in wh.files_extracted_by_last_query():
        print(f"  {uri}")

    banner(6, "observing the plans generated on the fly (lazy transformation)")
    print("operators injected by the run-time rewrite:")
    print(wh.render_last_trace())

    banner(7, "observing the contents of the cache and updates to it")
    print(wh.cache.render())
    print("\nre-running the same query (best case: no ETL at all):")
    wh.repo.reset_counters()
    started = time.perf_counter()
    wh.query(sql)
    print(f"  {(time.perf_counter() - started) * 1e3:.1f} ms, "
          f"{wh.repo.reads} file reads")
    print("\ntouching the file to trigger a lazy refresh:")
    uri = wh.files_extracted_by_last_query() or \
        [wh.repo.list_files()[0].uri]
    wh.repo.touch(uri[0]) if uri else None
    wh.db.recycler.invalidate_all()  # force re-evaluation through the cache
    wh.query(sql)
    refreshes = [e for e in wh.last_trace if e.get("op") == "refresh"]
    print(f"  staleness detected: {refreshes}")

    banner(8, "looking through the log: operations in order")
    for entry in wh.oplog.tail(12):
        print("  " + entry.render())


if __name__ == "__main__":
    main()
