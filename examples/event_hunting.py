#!/usr/bin/env python3
"""Hunting interesting seismic events with STA/LTA (§4).

Synthesises a repository with a known earthquake catalogue, opens a lazy
warehouse, and runs the classic STA/LTA trigger over selected streams —
fetching waveform windows through ordinary dataview queries, so only the
files of the inspected streams are ever extracted.  Detections are
compared against the injected ground truth.

Run:  python examples/event_hunting.py
"""

import tempfile

from repro import SeismicWarehouse, build_repository, hunt_events
from repro.mseed.inventory import find_station
from repro.mseed.synthesize import RepositorySpec
from repro.util.timefmt import format_iso8601


def main() -> None:
    root = tempfile.mkdtemp(prefix="lazyetl-hunt-")
    spec = RepositorySpec(files_per_stream=3, n_events=4)
    manifest = build_repository(root, spec)
    print(f"repository: {len(manifest.entries)} files; injected events:")
    for event in manifest.events:
        print(f"  #{event.event_id} M{event.magnitude:.1f} at "
              f"{format_iso8601(event.origin_time_us)} "
              f"({event.latitude:.1f}N, {event.longitude:.1f}E)")

    warehouse = SeismicWarehouse(root, mode="lazy")
    print(f"\nwarehouse ready ({warehouse.load_report.seconds * 1e3:.0f} ms, "
          "metadata only). hunting on the vertical channels ...")

    window = ("2010-01-12T22:00:00.000", "2010-01-12T22:30:00.000")
    total = 0
    for station_code in ("HGN", "DBN", "ISK", "APE"):
        try:
            station = find_station(station_code)
        except KeyError:
            continue
        detections = hunt_events(
            warehouse, station.code, "BHZ", window[0], window[1],
            on_threshold=3.0, off_threshold=1.2,
        )
        touched = warehouse.files_extracted_by_last_query()
        print(f"\n{station.network}.{station.code} BHZ "
              f"({len(touched)} files extracted):")
        if not detections:
            print("  no triggers")
        for detection in detections:
            total += 1
            arrivals = [
                (abs(detection.onset_time_us - ev.arrival_time_us(station)),
                 ev)
                for ev in manifest.events
            ]
            distance, nearest = min(arrivals, key=lambda pair: pair[0])
            match = (f"matches event #{nearest.event_id} "
                     f"(+{distance / 1e6:.1f} s)"
                     if distance < 10_000_000 else "unmatched")
            print(f"  {detection.render()}  -> {match}")

    cache = warehouse.cache
    print(f"\n{total} detections; extraction cache holds {len(cache)} "
          f"records ({cache.used_bytes / 1024:.0f} KiB), "
          f"hit rate {cache.stats.hit_rate:.0%}")
    print("only the hunted streams were ever extracted — the rest of the "
          "repository was never read past its headers.")


if __name__ == "__main__":
    main()
