#!/usr/bin/env python3
"""Lazy refresh in action: the repository changes underneath the warehouse.

Demonstrates §3.3's update handling: new files appear (a sync picks up
their metadata in milliseconds), and existing files are modified (the
extraction cache notices the newer mtime *during the next query* and
re-extracts transparently — no refresh job ever runs).

Run:  python examples/live_updates.py
"""

import os
import tempfile
import time

import numpy as np

from repro import SeismicWarehouse, build_repository
from repro.mseed.files import write_mseed_file
from repro.mseed.synthesize import RepositorySpec
from repro.util.timefmt import from_ymd


def main() -> None:
    root = tempfile.mkdtemp(prefix="lazyetl-updates-")
    build_repository(root, RepositorySpec(files_per_stream=1))
    warehouse = SeismicWarehouse(root, mode="lazy")

    probe = ("SELECT COUNT(*), MAX(D.sample_value) FROM mseed.dataview "
             "WHERE F.station = 'HGN' AND F.channel = 'BHZ'")
    count, peak = warehouse.query(probe).first()
    print(f"initial HGN.BHZ: {count:,} samples, peak amplitude {peak}")

    print("\n-> a new file arrives from the station (next day) ...")
    new_path = os.path.join(root, "NL", "HGN",
                            "NL.HGN..BHZ.2010.013.2200.mseed")
    write_mseed_file(
        new_path, network="NL", station="HGN", location="", channel="BHZ",
        start_time_us=from_ymd(2010, 1, 13, 22, 0), sample_rate=40.0,
        samples=(np.arange(24_000) % 500).astype(np.int32),
    )
    started = time.perf_counter()
    report = warehouse.sync()
    print(f"   metadata sync: {report.changed} change(s) in "
          f"{(time.perf_counter() - started) * 1e3:.1f} ms "
          f"(added: {report.added})")
    count, peak = warehouse.query(probe).first()
    print(f"   HGN.BHZ now: {count:,} samples (new data queryable lazily)")

    print("\n-> the original file is re-processed upstream (overwritten) ...")
    uri = "NL/HGN/NL.HGN..BHZ.2010.012.2200.mseed"
    original = warehouse.repo.path_of(uri)
    write_mseed_file(
        original, network="NL", station="HGN", location="", channel="BHZ",
        start_time_us=from_ymd(2010, 1, 12, 22, 0), sample_rate=40.0,
        samples=(np.arange(24_000) % 100 + 90_000).astype(np.int32),
    )
    stat = os.stat(original)
    os.utime(original, ns=(stat.st_atime_ns, stat.st_mtime_ns + 10 ** 9))

    print("   no sync this time — just query again:")
    count, peak = warehouse.query(probe).first()
    refreshes = [e for e in warehouse.last_trace if e.get("op") == "refresh"]
    print(f"   HGN.BHZ: {count:,} samples, peak {peak} "
          f"(>= 90000 proves the rewrite was picked up)")
    print(f"   staleness events during the query: {refreshes}")
    print(f"   cache stale drops so far: "
          f"{warehouse.cache.stats.stale_drops}")


if __name__ == "__main__":
    main()
