#!/usr/bin/env python3
"""Sharded scatter-gather execution: break the GIL ceiling.

Builds a small synthetic mSEED repository and opens the same lazy
warehouse twice — single-process and with ``shards=2``.  With sharding
on, the corpus is hash-partitioned across warm worker *processes*, each
owning a full lazy warehouse over its slice.  Decomposable aggregates
run as per-shard partials plus a parent-side combine (watch EXPLAIN
render the fan-out); everything else runs the parent's own plan with
only extraction scattered to the owning shards.  Both paths answer
bit-for-bit identically to the single-process engine.

Run:  python examples/sharded_execution.py

NOTE the ``__main__`` guard below is mandatory: shard workers are
spawned (not forked), and spawn re-imports the launching module.
"""

import tempfile

from repro import SeismicWarehouse, build_repository
from repro.mseed.synthesize import RepositorySpec

SQL = """SELECT F.network, COUNT(*) AS n,
       MIN(D.sample_value) AS lo, MAX(D.sample_value) AS hi
FROM mseed.dataview GROUP BY F.network ORDER BY F.network"""


def main() -> None:
    root = tempfile.mkdtemp(prefix="lazyetl-shards-")
    print(f"1. synthesising an mSEED repository under {root} ...")
    build_repository(root, RepositorySpec(files_per_stream=2))

    print("\n2. single-process baseline ...")
    with SeismicWarehouse(root, mode="lazy") as baseline:
        expected = baseline.query(SQL).rows()
        print(f"   {expected}")

    print("\n3. the same warehouse at shards=2 "
          "(two worker processes spawn and harvest) ...")
    with SeismicWarehouse(root, mode="lazy", shards=2) as wh:
        rows = wh.query(SQL).rows()
        print(f"   {rows}")
        print(f"   identical to single-process: {rows == expected}")

        print("\n4. EXPLAIN shows the scatter-gather fan-out:")
        plan = wh.explain(SQL)
        for line in plan.splitlines():
            if "sharded" in line or line.startswith(("scatter",
                                                     "gather", "combine")):
                print(f"   {line}")

        print("\n5. sys.shards — one row per worker process:")
        for row in wh.query("SELECT shard_id, pid, alive, files, queries "
                            "FROM sys.shards ORDER BY shard_id").rows():
            print(f"   {row}")

        report = wh.db.query_with_report(SQL)[1]
        print(f"\n6. worker-side work folds into the parent report: "
              f"rows_extracted={report.rows_extracted}")
    print("\ndone — workers drained and joined before storage teardown.")


if __name__ == "__main__":
    main()
