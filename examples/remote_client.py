#!/usr/bin/env python3
"""Remote serving: ``repro-serve`` as a subprocess, queried over TCP.

Launches the ``repro-serve`` entry point (``python -m repro.net.cli``)
against a synthetic mSEED repository, waits for its ``ready`` line,
then drives it from the two remote clients:

* the sync client (:func:`repro.net.connect_tcp`) — same DB-API cursor
  surface as an in-process connection, plus typed parameters and the
  full per-query report across the wire;
* the asyncio client (:func:`repro.net.connect_tcp_async`) — several
  cursors pipelined over one connection with ``asyncio.gather``.

Finally the server is asked to shut down with SIGTERM and drains
gracefully.

Run:  python examples/remote_client.py
"""

import asyncio
import signal
import subprocess
import sys
import tempfile

from repro import build_repository
from repro.mseed.synthesize import RepositorySpec
from repro.net import connect_tcp, connect_tcp_async

TOKEN = "example-secret"


def start_server(root: str) -> tuple[subprocess.Popen, str, int]:
    """Start ``repro-serve`` and parse its machine-readable ready line."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.net.cli",
         "--repo", root, "--mode", "lazy",
         "--tcp-port", "0", "--auth-token", f"example={TOKEN}"],
        stdout=subprocess.PIPE, text=True,
    )
    for line in proc.stdout:
        line = line.strip()
        print(f"   [server] {line}")
        if line.startswith("repro-serve: ready"):
            tcp = next(part for part in line.split() if part.startswith("tcp="))
            host, port = tcp[len("tcp="):].rsplit(":", 1)
            return proc, host, int(port)
    raise RuntimeError("repro-serve exited before becoming ready")


def sync_tour(host: str, port: int) -> None:
    print("\n2. sync client: DB-API cursors over TCP ...")
    conn = connect_tcp(host, port, token=TOKEN)
    try:
        count = conn.execute("SELECT COUNT(*) FROM mseed.records").scalar()
        print(f"   {count} records visible remotely")

        cursor = conn.execute(
            "SELECT station, COUNT(*) AS files FROM mseed.files "
            "WHERE sample_rate > ? GROUP BY station ORDER BY station",
            (1.0,))
        for station, files in cursor.fetchall():
            print(f"   {station:>6}: {files} files")
        report = cursor.report
        print(f"   report crossed the wire too: rows_out={report.rows_out} "
              f"execute_s={report.execute_s * 1e3:.1f} ms")

        stmt = conn.prepare(
            "SELECT COUNT(*) FROM mseed.files WHERE station = :sta")
        for sta in ("HGN", "DBN"):
            print(f"   prepared lookup {sta}: "
                  f"{stmt.execute({'sta': sta}).scalar()} files")

        rows = conn.execute(
            "SELECT session, peer, principal FROM sys.connections").fetchall()
        print(f"   sys.connections sees {len(rows)} live connection(s): "
              f"{rows[0][2]!r} from {rows[0][1]}")
    finally:
        conn.close()


async def async_tour(host: str, port: int) -> None:
    print("\n3. asyncio client: pipelined cursors on one connection ...")
    conn = await connect_tcp_async(host, port, token=TOKEN)
    async with conn:
        stations = [s for (s,) in await (await conn.execute(
            "SELECT DISTINCT station FROM mseed.files ORDER BY station"
        )).fetchall()]

        async def span(station: str):
            cursor = await conn.execute(
                "SELECT MIN(D.sample_value), MAX(D.sample_value) "
                "FROM mseed.dataview WHERE F.station = ?", (station,))
            low, high = await cursor.fetchone()
            return station, low, high

        for station, low, high in await asyncio.gather(
                *[span(s) for s in stations]):
            print(f"   {station:>6}: samples span [{low:,.0f}, {high:,.0f}]")


def main() -> None:
    root = tempfile.mkdtemp(prefix="lazyetl-remote-")
    print(f"1. synthesising an mSEED repository under {root} ...")
    build_repository(root, RepositorySpec(files_per_stream=2))

    proc, host, port = start_server(root)
    try:
        sync_tour(host, port)
        asyncio.run(async_tour(host, port))

        print("\n4. SIGTERM: the server drains in-flight cursors and exits ...")
        proc.send_signal(signal.SIGTERM)
        code = proc.wait(timeout=30)
        print(f"   server exited with code {code}")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


if __name__ == "__main__":
    main()
