#!/usr/bin/env python3
"""Demo capability (3): comparing lazy against eager and external ETL.

Measures, for one repository: initial-load time, time-to-first-answer,
warm-query latency and warehouse storage across the three ingestion
strategies, then prints a paper-style table.

Run:  python examples/eager_vs_lazy.py
"""

import tempfile
import time

from repro import SeismicWarehouse, build_repository, fig1_query1, fig1_query2
from repro.mseed.synthesize import RepositorySpec
from repro.util.human import format_bytes, format_duration, format_table


def measure(mode: str, root: str) -> list[str]:
    started = time.perf_counter()
    warehouse = SeismicWarehouse(root, mode=mode)
    load_s = time.perf_counter() - started

    started = time.perf_counter()
    warehouse.query(fig1_query1())
    first_s = time.perf_counter() - started

    started = time.perf_counter()
    warehouse.query(fig1_query2())
    second_s = time.perf_counter() - started

    started = time.perf_counter()
    warehouse.query(fig1_query2())
    warm_s = time.perf_counter() - started

    return [
        mode,
        format_duration(load_s),
        format_duration(first_s),
        format_duration(load_s + first_s),
        format_duration(warm_s),
        format_bytes(warehouse.warehouse_bytes()),
    ]


def main() -> None:
    root = tempfile.mkdtemp(prefix="lazyetl-compare-")
    manifest = build_repository(root, RepositorySpec(files_per_stream=2))
    print(f"repository: {len(manifest.entries)} files, "
          f"{manifest.total_samples:,} samples, "
          f"{format_bytes(manifest.total_bytes)}\n")

    rows = [measure(mode, root) for mode in ("lazy", "eager", "external")]
    print(format_table(
        ["mode", "initial load", "Q1 (cold)", "time-to-answer",
         "Q2 warm", "warehouse size"],
        rows,
    ))
    print(
        "\nreading the table:\n"
        "- lazy: metadata-only load -> near-instant first answer; warm\n"
        "  queries are served from the extraction cache and recycler.\n"
        "- eager: the paper's 'high initial investment of time', plus the\n"
        "  several-fold storage blow-up of materialised samples+timestamps.\n"
        "- external: no load at all, but EVERY query pays a full-repository\n"
        "  extraction (the §2 external-table/NoDB behaviour)."
    )


if __name__ == "__main__":
    main()
