#!/usr/bin/env python3
"""Quickstart: an instant-on seismic warehouse in five steps.

Builds a small synthetic mSEED repository, opens a Lazy ETL warehouse over
it (loading only metadata), and runs the paper's two Figure-1 queries —
the second query twice, to show the extraction cache at work.

Run:  python examples/quickstart.py
"""

import tempfile
import time

from repro import SeismicWarehouse, build_repository, fig1_query1, fig1_query2
from repro.mseed.synthesize import RepositorySpec


def main() -> None:
    root = tempfile.mkdtemp(prefix="lazyetl-quickstart-")
    print(f"1. synthesising an mSEED repository under {root} ...")
    manifest = build_repository(root, RepositorySpec(files_per_stream=2))
    print(f"   {len(manifest.entries)} files, "
          f"{manifest.total_samples:,} samples, "
          f"{manifest.total_bytes / 1024:.0f} KiB (Steim-2 compressed)")

    print("\n2. opening a lazy warehouse (initial load = metadata only) ...")
    started = time.perf_counter()
    warehouse = SeismicWarehouse(root, mode="lazy")
    print(f"   ready for queries in "
          f"{(time.perf_counter() - started) * 1e3:.0f} ms "
          f"({warehouse.load_report.records_loaded} record-metadata rows)")

    print("\n3. Figure 1, query 1 — a 2-second STA window at ISK.BHE:")
    print(fig1_query1())
    started = time.perf_counter()
    result = warehouse.query(fig1_query1())
    print(f"-> {result.rows()}  "
          f"[{(time.perf_counter() - started) * 1e3:.0f} ms, extracted only "
          f"{warehouse.files_extracted_by_last_query()}]")

    print("\n4. Figure 1, query 2 — min/max per NL station on BHZ:")
    started = time.perf_counter()
    result = warehouse.query(fig1_query2())
    print(result.format())
    print(f"   cold: {(time.perf_counter() - started) * 1e3:.0f} ms")

    started = time.perf_counter()
    warehouse.query(fig1_query2())
    print(f"   warm (cache + recycler): "
          f"{(time.perf_counter() - started) * 1e3:.1f} ms")

    print("\n5. cache state (the paper's lazy loading):")
    stats = warehouse.cache.stats
    print(f"   {len(warehouse.cache)} cached records, "
          f"{warehouse.cache.used_bytes / 1024:.0f} KiB, "
          f"hit rate {stats.hit_rate:.0%}")


if __name__ == "__main__":
    main()
