#!/usr/bin/env python3
"""The unified Connection/Cursor API: prepared statements + streaming.

Opens a lazy warehouse, then shows the three things the API layer adds:

1. **Prepared statements** — one compile, many executions with different
   bound values; the plan cache makes re-execution's compile cost ~zero.
2. **Streaming cursors** — a full-scan query consumed batch by batch:
   the first rows arrive while most of the table has not been pulled.
3. **One protocol everywhere** — the same cursor works against a
   concurrent WarehouseService client session.

Run:  python examples/streaming_cursor.py
"""

import tempfile
import time

from repro import SeismicWarehouse, build_repository
from repro.mseed.synthesize import RepositorySpec
from repro.seismology.queries import fig1_query2_template


def main() -> None:
    root = tempfile.mkdtemp(prefix="lazyetl-cursor-")
    print(f"1. synthesising an mSEED repository under {root} ...")
    manifest = build_repository(root, RepositorySpec(files_per_stream=2))
    print(f"   {len(manifest.entries)} files, "
          f"{manifest.total_samples:,} samples")

    warehouse = SeismicWarehouse(root, mode="lazy")
    conn = warehouse.connect()

    print("\n2. prepared statement: Figure-1 Q2 with named parameters")
    stmt = conn.prepare(fig1_query2_template())
    print(f"   placeholders: {stmt.param_names}")
    for network in ("NL", "KO", "NL"):
        started = time.perf_counter()
        cur = stmt.execute({"network": network, "channel": "BHZ"})
        rows = cur.fetchall()
        elapsed = (time.perf_counter() - started) * 1e3
        report = cur.report
        print(f"   network={network}: {len(rows)} stations in "
              f"{elapsed:.1f} ms  (plan cache "
              f"{'HIT' if report.plan_cache_hit else 'miss'}, compile "
              f"{report.plan_s * 1e6:.0f} us, extracted "
              f"{report.rows_extracted} rows)")

    print("\n3. streaming cursor over a full metadata scan")
    cur = conn.cursor()
    cur.execute("SELECT R.file_location, R.seq_no, R.sample_count "
                "FROM mseed.records AS R", batch_rows=200)
    first = cur.fetchmany(5)
    print(f"   first rows arrived after streaming only "
          f"{cur.rows_streamed} rows (table has more):")
    for row in first:
        print(f"     {row}")
    remaining = sum(1 for _ in cur)
    print(f"   ... drained {remaining} more rows; rowcount={cur.rowcount}")

    print("\n4. LIMIT stops the stream early")
    cur.execute("SELECT R.seq_no FROM mseed.records AS R LIMIT 3",
                batch_rows=500)
    print(f"   {cur.fetchall()} -> rows_streamed={cur.rows_streamed}")

    print("\n5. the same cursor protocol over a concurrent service session")
    with warehouse.serve(max_workers=2) as svc:
        session = svc.session("analyst")
        scur = session.cursor()
        scur.execute("SELECT count(*) FROM mseed.files AS F "
                     "WHERE F.network = ?", ["NL"])
        print(f"   NL files: {scur.scalar()}  "
              f"(served remotely, report.rows_out={scur.report.rows_out})")

    print("\ndone: one entry point — connect() -> cursors — everywhere.")


if __name__ == "__main__":
    main()
