"""Benchmark session configuration."""

import pytest


def pytest_configure(config):
    # The experiment benches print paper-style tables; keep them visible.
    config.option.verbose = max(config.option.verbose, 0)


@pytest.fixture(scope="session")
def demo_repo_path():
    from repro.bench.workload import shared_demo_repo

    root, _manifest = shared_demo_repo()
    return root
