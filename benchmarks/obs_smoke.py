#!/usr/bin/env python3
"""CI observability smoke: serve a warehouse, scrape it, validate it.

Starts a served lazy warehouse with the background snapshotter, the
slow-query log and the HTTP observability endpoint enabled, runs a
small mixed query workload across sessions, then validates the whole
surface end to end: the Prometheus text export (scraped over HTTP) must
parse under the strict exposition parser, carry every expected metric
family, and keep label cardinality bounded; /healthz must report ok;
/sys/queries must serve the journal the same way SQL over sys.queries
scans it.

Run:  PYTHONPATH=src python benchmarks/obs_smoke.py
Exits non-zero on any failed check (CI gates on it).
"""

import json
import sys
import tempfile
import time
import urllib.request

from repro import SeismicWarehouse, build_repository
from repro.mseed.synthesize import RepositorySpec
from repro.obs.export import label_cardinality, parse_exposition

EXPECTED_FAMILIES = (
    # serving
    "repro_queries_total",
    "repro_query_seconds",
    "repro_queue_wait_seconds",
    "repro_service_queue_depth",
    "repro_service_submitted_total",
    # extraction + cache
    "repro_extract_seconds",
    "repro_extract_rows_total",
    "repro_cache_lookups_total",
    "repro_cache_hits_total",
    # compilation
    "repro_plan_cache_hits_total",
    "repro_plan_cache_entries",
)

QUERY_MIX = [
    ("alice", "SELECT COUNT(*) AS n FROM mseed.dataview "
              "WHERE F.network = 'NL'"),
    ("alice", "SELECT F.station, MIN(D.sample_value) AS lo "
              "FROM mseed.dataview WHERE F.network = 'NL' "
              "GROUP BY F.station ORDER BY F.station"),
    ("bob", "SELECT COUNT(*) AS n FROM mseed.files"),
    ("bob", "SELECT COUNT(*) AS n FROM mseed.dataview "
            "WHERE F.network = 'NL'"),
    ("carol", "SELECT R.seq_no FROM mseed.dataview "
              "WHERE F.station = 'HGN' AND F.channel = 'BHZ'"),
]

MAX_LABEL_SETS = 64


def main() -> int:
    failures: list[str] = []

    def check(ok: bool, what: str) -> None:
        print(f"  {'ok' if ok else 'FAIL'}: {what}")
        if not ok:
            failures.append(what)

    root = tempfile.mkdtemp(prefix="lazyetl-obs-smoke-")
    print(f"building repository under {root} ...")
    build_repository(root, RepositorySpec(files_per_stream=2))

    wh = SeismicWarehouse(root, mode="lazy")
    print("serving warehouse, running query mix ...")
    with wh.serve(max_workers=2, slow_query_s=1e-9,
                  metrics_interval_s=0.05, http_port=0) as svc:
        for session, sql in QUERY_MIX * 2:
            svc.query(sql, session=session)
        time.sleep(0.1)  # let the snapshotter tick at least once

        base = svc.http.url
        print(f"scraping observability endpoint at {base} ...")
        with urllib.request.urlopen(f"{base}/metrics", timeout=10) as resp:
            check(resp.status == 200 and
                  "version=0.0.4" in resp.headers["Content-Type"],
                  "GET /metrics serves the exposition content type")
            text = resp.read().decode("utf-8")
        samples = parse_exposition(text)
        check(len(samples) > 0, f"exposition parses ({len(samples)} samples)")

        with urllib.request.urlopen(f"{base}/healthz", timeout=10) as resp:
            health = json.load(resp)
            check(resp.status == 200 and health["status"] == "ok",
                  f"GET /healthz reports ok ({health['status']})")

        with urllib.request.urlopen(f"{base}/sys/queries",
                                    timeout=10) as resp:
            journal = json.load(resp)
        check(len(journal["rows"]) == len(QUERY_MIX) * 2,
              f"GET /sys/queries serves the journal "
              f"({len(journal['rows'])} rows)")
        sql_count = wh.query(
            "SELECT count(*) FROM sys.queries WHERE status = 'ok'"
        ).rows()[0][0]
        check(sql_count >= len(QUERY_MIX) * 2,
              f"SQL over sys.queries agrees ({sql_count} ok rows)")

        names = {name for name, _, _ in samples}
        for family in EXPECTED_FAMILIES:
            check(family in names or f"{family}_count" in names,
                  f"family {family} exported")

        card = label_cardinality(samples)
        worst = max(card, key=card.get)
        check(card[worst] <= MAX_LABEL_SETS + 1,
              f"label cardinality bounded (worst {worst}={card[worst]})")

        check(len(svc.slow_log) == len(QUERY_MIX) * 2,
              f"slow-query log caught the mix ({len(svc.slow_log)})")
        check(len(svc.snapshotter.snapshots()) >= 1,
              f"snapshotter ticked ({len(svc.snapshotter.snapshots())})")

    if failures:
        print(f"\nobs smoke FAILED ({len(failures)} checks):")
        for what in failures:
            print(f"  - {what}")
        return 1
    print("\nobs smoke passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
