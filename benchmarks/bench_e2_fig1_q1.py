"""E2 — Figure 1, query 1: the 2-second STA window at ISK.BHE."""

from repro.bench.harness import run_e2
from repro.seismology.queries import fig1_query1
from repro.seismology.warehouse import SeismicWarehouse


def test_e2_q1_lazy_cold(benchmark, demo_repo_path):
    def cold_query():
        wh = SeismicWarehouse(demo_repo_path, mode="lazy")
        return wh.query(fig1_query1())

    result = benchmark.pedantic(cold_query, rounds=3, iterations=1)
    assert result.row_count == 1
    table = run_e2()
    print("\n" + table.render())


def test_e2_q1_lazy_warm(benchmark, demo_repo_path):
    wh = SeismicWarehouse(demo_repo_path, mode="lazy")
    wh.query(fig1_query1())
    result = benchmark(lambda: wh.query(fig1_query1()))
    assert result.row_count == 1
