#!/usr/bin/env python3
"""E15 — vectorised batch executor vs the row-at-a-time baseline.

Runs as a pytest bench (like its E10–E13 siblings) *and* as a standalone
script for the CI smoke job::

    python benchmarks/bench_e15_vectorized.py --smoke --json-dir bench-results

The standalone form writes ``BENCH_E15.json`` with a machine-checkable
``criteria`` block: the cold-load and fig1 Q1/Q2 speedups of the
vectorised engine over ``query_rowpath`` + scalar Steim decoding, each
gated at >= 5x (ISSUE 6 acceptance).
"""

import sys


def _acceptance(table):
    """Pull the acceptance row out of the E15 table.

    Returns ``(cold_load_speedup, q1_speedup, q2_speedup)``.
    """
    for row in table.rows:
        if row[0].startswith("acceptance:"):
            return (float(row[1]), float(row[2]), float(row[3]))
    raise AssertionError("E15 table has no acceptance row")


def test_e15_vectorized_executor(benchmark, demo_repo_path):
    """Benchmarked unit: one cold fig1 Q2 on the vectorised engine.

    Also regenerates the full E15 comparison table and asserts the
    acceptance criteria: >= 5x over the row-at-a-time baseline on the
    cold full-stream load and both Figure-1 queries.
    """
    from repro.bench.harness import run_e15
    from repro.seismology.queries import fig1_query2
    from repro.seismology.warehouse import SeismicWarehouse

    def cold_q2():
        wh = SeismicWarehouse(demo_repo_path, mode="lazy",
                              enable_recycler=False)
        return wh.query(fig1_query2())

    result = benchmark.pedantic(cold_q2, rounds=3, iterations=1)
    assert result.row_count > 0

    table = run_e15(smoke=True)
    print("\n" + table.render())
    for label, speedup in zip(("cold load", "fig1 Q1", "fig1 Q2"),
                              _acceptance(table)):
        assert speedup >= 5.0, (
            f"{label}: vectorised speedup {speedup:.2f}x < 5x")


def main(argv=None) -> int:
    import argparse
    import os
    import platform
    import time

    from repro.bench.harness import run_e15

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced parameters (CI-sized run)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="override best-of-N measurement repeats")
    parser.add_argument("--json-dir", metavar="DIR",
                        default="benchmarks/results",
                        help="directory for BENCH_E15.json "
                             "(default: %(default)s)")
    parser.add_argument("--no-json", action="store_true",
                        help="skip writing the JSON artifact")
    args = parser.parse_args(argv)

    started = time.perf_counter()
    table = run_e15(smoke=args.smoke, repeats=args.repeats)
    elapsed = time.perf_counter() - started
    print(table.render())
    print(f"  (experiment ran in {elapsed:.1f} s)")

    cold_x, q1_x, q2_x = _acceptance(table)
    if not args.no_json:
        os.makedirs(args.json_dir, exist_ok=True)
        path = os.path.join(args.json_dir, "BENCH_E15.json")
        table.to_json(
            path,
            params={"smoke": args.smoke, "repeats": args.repeats},
            elapsed_s=round(elapsed, 3),
            python=platform.python_version(),
            machine=platform.machine(),
            criteria={
                "cold_load_speedup_x": cold_x,
                "fig1_q1_speedup_x": q1_x,
                "fig1_q2_speedup_x": q2_x,
                "speedup_min": 5.0,
            },
        )
        print(f"  json written to {path}")

    ok = min(cold_x, q1_x, q2_x) >= 5.0
    print(f"  acceptance: cold load {cold_x:.1f}x, Q1 {q1_x:.1f}x, "
          f"Q2 {q2_x:.1f}x (each >= 5x) -> {'PASS' if ok else 'FAIL'}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
