"""E9 — ablation: metadata granularity (filename / file / record)."""

from repro.bench.harness import run_e9
from repro.etl.metadata import Granularity
from repro.seismology.warehouse import SeismicWarehouse


def test_e9_granularity_table(benchmark, demo_repo_path):
    benchmark.pedantic(
        lambda: SeismicWarehouse(demo_repo_path, mode="lazy",
                                 granularity=Granularity.FILENAME),
        rounds=3, iterations=1,
    )
    table = run_e9()
    print("\n" + table.render())
    # Extraction selectivity must improve with finer granularity.
    extracted = [int(row[4]) for row in table.rows]
    assert extracted[2] <= extracted[1] <= extracted[0]
