"""E11 — persistent storage: cold vs warm start, compression, lazy I/O."""

from repro.bench.harness import run_e11
from repro.seismology.queries import fig1_query1
from repro.seismology.warehouse import SeismicWarehouse


def test_e11_storage_table(benchmark, demo_repo_path, tmp_path):
    """Benchmarked unit: warm-starting a warehouse from a checkpoint."""
    ckpt = tmp_path / "ckpt"
    cold = SeismicWarehouse(demo_repo_path, mode="lazy", storage_path=ckpt)
    q1 = fig1_query1()
    cold.query(q1)
    cold.checkpoint()

    warm = benchmark(
        lambda: SeismicWarehouse(demo_repo_path, mode="lazy",
                                 storage_path=ckpt)
    )
    assert warm.load_report.strategy.endswith("+warm")
    warm.query(q1)
    # Zero re-extraction after restart: the reproduction target.
    assert warm.files_extracted_by_last_query() == []
    assert warm.cache.stats.hits > 0

    # Column pruning reads fewer pages than a full-width scan.
    warm.query("SELECT count(*) FROM mseed.files")
    narrow = warm.db.last_report
    assert narrow.pages_skipped > narrow.pages_read

    table = run_e11()
    print("\n" + table.render())
