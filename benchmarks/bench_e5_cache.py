"""E5 — extraction-cache behaviour under budget pressure and policies."""

from repro.bench.harness import run_e5
from repro.bench.workload import shared_demo_repo, stream_window_queries
from repro.seismology.warehouse import SeismicWarehouse


def test_e5_cache_table(benchmark):
    root, manifest = shared_demo_repo()
    workload = stream_window_queries(manifest, 12, seed=21)
    wh = SeismicWarehouse(root, mode="lazy", enable_recycler=False)
    for sql in workload:
        wh.query(sql)  # warm pass

    def warm_pass():
        for sql in workload:
            wh.query(sql)

    benchmark.pedantic(warm_pass, rounds=3, iterations=1)
    assert wh.cache.stats.hit_rate > 0.5
    table = run_e5(queries=16)
    print("\n" + table.render())
