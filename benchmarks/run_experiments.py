#!/usr/bin/env python3
"""Regenerate every experiment table and (optionally) EXPERIMENTS.md.

Usage:
    python benchmarks/run_experiments.py            # print all tables
    python benchmarks/run_experiments.py E1 E4      # a subset
    python benchmarks/run_experiments.py --markdown EXPERIMENTS_MEASURED.md
"""

from __future__ import annotations

import argparse
import platform
import sys
import time

from repro.bench.harness import ALL_EXPERIMENTS


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids (default: all)")
    parser.add_argument("--markdown", metavar="PATH",
                        help="also write the tables as markdown")
    args = parser.parse_args()

    wanted = args.experiments or list(ALL_EXPERIMENTS)
    unknown = [e for e in wanted if e not in ALL_EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}")

    tables = []
    for eid in wanted:
        started = time.perf_counter()
        table = ALL_EXPERIMENTS[eid]()
        elapsed = time.perf_counter() - started
        print(table.render())
        print(f"  (experiment ran in {elapsed:.1f} s)\n")
        tables.append(table)

    if args.markdown:
        with open(args.markdown, "w") as handle:
            handle.write("# Measured experiment tables\n\n")
            handle.write(
                f"Environment: Python {platform.python_version()} on "
                f"{platform.machine()}; single process, warm filesystem "
                "cache.\n\n"
            )
            for table in tables:
                handle.write(table.markdown())
                handle.write("\n")
        print(f"markdown written to {args.markdown}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
