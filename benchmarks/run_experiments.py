#!/usr/bin/env python3
"""Regenerate every experiment table and (optionally) EXPERIMENTS.md.

Usage:
    python benchmarks/run_experiments.py            # print all tables
    python benchmarks/run_experiments.py E1 E4      # a subset
    python benchmarks/run_experiments.py --markdown EXPERIMENTS_MEASURED.md
    python benchmarks/run_experiments.py --smoke --json-dir bench-results

Every experiment also writes a machine-readable ``BENCH_<id>.json``
(name, params, table rows, wall time) into ``--json-dir`` so the perf
trajectory is tracked across PRs; pass ``--no-json`` to skip.  ``--smoke``
runs reduced-parameter variants suitable for CI.
"""

from __future__ import annotations

import argparse
import os
import platform
import sys
import time

from repro.bench.harness import ALL_EXPERIMENTS, SMOKE_EXPERIMENTS


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids (default: all)")
    parser.add_argument("--markdown", metavar="PATH",
                        help="also write the tables as markdown")
    parser.add_argument("--smoke", action="store_true",
                        help="reduced parameters (CI-sized runs)")
    parser.add_argument("--json-dir", metavar="DIR",
                        default="benchmarks/results",
                        help="directory for BENCH_<id>.json artifacts "
                             "(default: %(default)s)")
    parser.add_argument("--no-json", action="store_true",
                        help="skip writing the JSON artifacts")
    args = parser.parse_args()

    registry = SMOKE_EXPERIMENTS if args.smoke else ALL_EXPERIMENTS
    wanted = args.experiments or list(registry)
    unknown = [e for e in wanted if e not in registry]
    if unknown:
        parser.error(f"unknown experiments: {unknown}")

    if not args.no_json:
        os.makedirs(args.json_dir, exist_ok=True)

    tables = []
    for eid in wanted:
        started = time.perf_counter()
        table = registry[eid]()
        elapsed = time.perf_counter() - started
        print(table.render())
        print(f"  (experiment ran in {elapsed:.1f} s)\n")
        tables.append(table)
        if not args.no_json:
            path = os.path.join(args.json_dir, f"BENCH_{eid}.json")
            table.to_json(
                path,
                params={"smoke": args.smoke},
                elapsed_s=round(elapsed, 3),
                python=platform.python_version(),
                machine=platform.machine(),
            )
            extra = (f" (+{len(table.reports)} query reports)"
                     if table.reports else "")
            print(f"  json written to {path}{extra}\n")

    if args.markdown:
        with open(args.markdown, "w") as handle:
            handle.write("# Measured experiment tables\n\n")
            handle.write(
                f"Environment: Python {platform.python_version()} on "
                f"{platform.machine()}; single process, warm filesystem "
                "cache.\n\n"
            )
            for table in tables:
                handle.write(table.markdown())
                handle.write("\n")
        print(f"markdown written to {args.markdown}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
