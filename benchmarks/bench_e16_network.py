#!/usr/bin/env python3
"""E16 — the wire protocol at 100+ real concurrent TCP connections.

Runs as a pytest bench (like its E10–E15 siblings) *and* as a standalone
script for the CI smoke job::

    python benchmarks/bench_e16_network.py --smoke --json-dir bench-results

Each remote query pays the full serving stack — framing, token auth,
admission control, server-side cursors, codec-compressed batches — over
a real socket from the asyncio client, against an in-process baseline
of the same session count.  The standalone form writes
``BENCH_E16.json`` with a machine-checkable ``criteria`` block:
sustained connections (>= 100), dropped queries (== 0), and graceful
drain under load (live streaming cursors finish through ``close()``).
"""

import sys


def _acceptance(table):
    """Pull the acceptance row out of the E16 table.

    Returns ``(connections, dropped, drain_clean)``.
    """
    for row in table.rows:
        if row[0].startswith("acceptance:"):
            return (int(row[1]), int(row[2]), row[3] == "true")
    raise AssertionError("E16 table has no acceptance row")


def test_e16_network(benchmark, demo_repo_path):
    """Benchmarked unit: one query over an established TCP connection.

    Also regenerates the E16 table at reduced load and asserts the
    acceptance criteria: every connection sustained, zero dropped
    queries, graceful drain under load.
    """
    from repro.bench.harness import run_e16
    from repro.net import connect_tcp
    from repro.seismology.warehouse import SeismicWarehouse

    token = "bench-e16-pytest"
    wh = SeismicWarehouse(demo_repo_path, mode="lazy")
    sql = ("SELECT station, COUNT(*) AS n FROM mseed.files "
           "GROUP BY station ORDER BY station")
    wh.query(sql)  # warm
    service = wh.serve(max_workers=2, tcp_port=0, auth_tokens=[token])
    try:
        conn = connect_tcp("127.0.0.1", service.tcp_port, token=token)
        try:
            rows = benchmark.pedantic(
                lambda: conn.execute(sql).fetchall(), rounds=5, iterations=1)
            assert rows == wh.connect().execute(sql).fetchall()
        finally:
            conn.close()
    finally:
        service.close()
        wh.close()

    table = run_e16(smoke=True, connections=24)
    print("\n" + table.render())
    connections, dropped, drain_clean = _acceptance(table)
    assert connections == 24
    assert dropped == 0, f"{dropped} queries dropped under concurrency"
    assert drain_clean, "graceful drain aborted live cursors"


def main(argv=None) -> int:
    import argparse
    import os
    import platform
    import time

    from repro.bench.harness import run_e16

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced parameters (CI-sized run)")
    parser.add_argument("--connections", type=int, default=None,
                        help="concurrent TCP connections "
                             "(default: 100, the acceptance floor)")
    parser.add_argument("--queries-per-conn", type=int, default=None,
                        help="queries issued per connection")
    parser.add_argument("--json-dir", metavar="DIR",
                        default="benchmarks/results",
                        help="directory for BENCH_E16.json "
                             "(default: %(default)s)")
    parser.add_argument("--no-json", action="store_true",
                        help="skip writing the JSON artifact")
    args = parser.parse_args(argv)

    started = time.perf_counter()
    table = run_e16(smoke=args.smoke, connections=args.connections,
                    queries_per_conn=args.queries_per_conn)
    elapsed = time.perf_counter() - started
    print(table.render())
    print(f"  (experiment ran in {elapsed:.1f} s)")

    connections, dropped, drain_clean = _acceptance(table)
    if not args.no_json:
        os.makedirs(args.json_dir, exist_ok=True)
        path = os.path.join(args.json_dir, "BENCH_E16.json")
        table.to_json(
            path,
            params={"smoke": args.smoke, "connections": args.connections,
                    "queries_per_conn": args.queries_per_conn},
            elapsed_s=round(elapsed, 3),
            python=platform.python_version(),
            machine=platform.machine(),
            criteria={
                "concurrent_connections": connections,
                "concurrent_connections_min": 100,
                "dropped_queries": dropped,
                "dropped_queries_max": 0,
                "graceful_drain_under_load": drain_clean,
            },
        )
        print(f"  json written to {path}")

    ok = connections >= 100 and dropped == 0 and drain_clean
    print(f"  acceptance: {connections} connections (>=100), {dropped} "
          f"dropped (==0), drain under load "
          f"{'clean' if drain_clean else 'ABORTED'} -> "
          f"{'PASS' if ok else 'FAIL'}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
