"""E4 — storage footprint: the '10x when loaded into a database' claim."""

from repro.bench.harness import run_e4
from repro.seismology.warehouse import SeismicWarehouse


def test_e4_storage_table(benchmark, demo_repo_path):
    """Benchmarked unit: computing the eager warehouse's resident size."""
    wh = SeismicWarehouse(demo_repo_path, mode="eager")
    size = benchmark(wh.warehouse_bytes)
    repo = wh.repository_bytes()
    # The reproduction target is the *shape*: several-fold blow-up.
    assert size > 5 * repo
    table = run_e4()
    print("\n" + table.render())
