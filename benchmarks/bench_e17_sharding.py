#!/usr/bin/env python3
"""E17 — sharded scatter-gather execution vs the single-process engine.

Runs as a pytest bench (like its E10–E16 siblings) *and* as a
standalone script for the CI smoke job::

    python benchmarks/bench_e17_sharding.py --smoke --json-dir bench-results

The workload is CPU-bound extraction: a full-corpus Steim decode feeding
a grouped MIN/MAX/SUM/COUNT aggregation, cold (all extraction caches
dropped, shard workers included) and warm, at 1, 2 and 4 shards.  The
standalone form writes ``BENCH_E17.json`` with a machine-checkable
``criteria`` block: bit-identical results at every shard count
(mandatory everywhere) and >= 2.5x cold-path speedup at 4 shards —
gated on ``os.cpu_count() >= 4``, since worker processes cannot beat
the GIL without cores to run on.
"""

import sys


def _acceptance(table):
    """Pull the acceptance row: ``(speedup, cpu_count, identical)``."""
    for row in table.rows:
        if row[0].startswith("acceptance:"):
            return (float(row[1]), int(row[2]), row[3] == "true")
    raise AssertionError("E17 table has no acceptance row")


def test_e17_sharding(benchmark, demo_repo_path):
    """Benchmarked unit: one warm decomposed aggregation at 2 shards.

    Also regenerates the E17 table at reduced size and asserts the
    universal acceptance criterion — bit-identical results across every
    shard count.  The speedup gate is asserted only on >= 4 cores.
    """
    from repro.bench.harness import run_e17
    from repro.seismology.warehouse import SeismicWarehouse

    sql = ("SELECT F.network, COUNT(*) AS n, MIN(D.sample_value) AS lo "
           "FROM mseed.dataview GROUP BY F.network ORDER BY F.network")
    wh = SeismicWarehouse(demo_repo_path, mode="lazy", shards=2)
    try:
        expected = wh.query(sql).rows()  # warm every worker cache
        rows = benchmark.pedantic(lambda: wh.query(sql).rows(),
                                  rounds=5, iterations=1)
        assert rows == expected
    finally:
        wh.close()

    table = run_e17(smoke=True, shard_counts=(1, 2))
    print("\n" + table.render())
    speedup, cpus, identical = _acceptance(table)
    assert identical, "sharded results diverged from single-process"
    if cpus >= 4:
        assert speedup >= 1.0


def main(argv=None) -> int:
    import argparse
    import os
    import platform
    import time

    from repro.bench.harness import run_e17

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced parameters (CI-sized run)")
    parser.add_argument("--shards", type=int, nargs="+", default=None,
                        help="shard counts to sweep (default: 1 2 4)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="cold/warm repetitions per configuration")
    parser.add_argument("--json-dir", metavar="DIR",
                        default="benchmarks/results",
                        help="directory for BENCH_E17.json "
                             "(default: %(default)s)")
    parser.add_argument("--no-json", action="store_true",
                        help="skip writing the JSON artifact")
    args = parser.parse_args(argv)

    started = time.perf_counter()
    table = run_e17(smoke=args.smoke,
                    shard_counts=tuple(args.shards) if args.shards else None,
                    repeats=args.repeats)
    elapsed = time.perf_counter() - started
    print(table.render())
    print(f"  (experiment ran in {elapsed:.1f} s)")

    speedup, cpus, identical = _acceptance(table)
    gate_active = cpus >= 4
    if not args.no_json:
        os.makedirs(args.json_dir, exist_ok=True)
        path = os.path.join(args.json_dir, "BENCH_E17.json")
        table.to_json(
            path,
            params={"smoke": args.smoke, "shards": args.shards,
                    "repeats": args.repeats},
            elapsed_s=round(elapsed, 3),
            python=platform.python_version(),
            machine=platform.machine(),
            criteria={
                "speedup_at_max_shards": speedup,
                "speedup_min": 2.5,
                "speedup_gate_active": gate_active,
                "cpu_count": cpus,
                "bit_identical": identical,
            },
        )
        print(f"  json written to {path}")

    ok = identical and (speedup >= 2.5 or not gate_active)
    gate = (f"{speedup:.2f}x (>=2.5 required, {cpus} cpus)" if gate_active
            else f"{speedup:.2f}x (gate waived: only {cpus} cpu)")
    print(f"  acceptance: identical={'yes' if identical else 'NO'}, "
          f"speedup {gate} -> {'PASS' if ok else 'FAIL'}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
