"""E12 — concurrent serving: throughput/p99 with coalesced lazy extraction."""

from repro.bench.harness import run_e12
from repro.seismology.warehouse import SeismicWarehouse


def test_e12_concurrency_table(benchmark, demo_repo_path):
    """Benchmarked unit: a 4-session coalesced burst over one warehouse.

    Also regenerates the full E12 table (serial baseline, coalescing
    ablation, 16-session run, warm pass) and asserts the acceptance
    criterion: ≥2x throughput for 4 coalesced sessions vs serial
    execution on multi-file queries.
    """
    sql = ("SELECT MIN(D.sample_value), MAX(D.sample_value), COUNT(*) "
           "FROM mseed.dataview WHERE F.channel = 'BHZ'")

    def burst():
        wh = SeismicWarehouse(demo_repo_path, mode="lazy",
                              cache_budget_bytes=64 * 1024)
        with wh.serve(max_workers=4) as svc:
            futures = [svc.session(f"s{i}").submit(sql) for i in range(4)]
            outcomes = [f.result() for f in futures]
        return outcomes

    outcomes = benchmark.pedantic(burst, rounds=3, iterations=1)
    assert len({tuple(o.result.rows()[0]) for o in outcomes}) == 1
    # The four concurrent sessions shared extraction work.
    assert sum(o.rows_coalesced for o in outcomes) > 0

    table = run_e12(smoke=True)
    print("\n" + table.render())
    throughputs = {}
    for row in table.rows:
        key = (row[0], row[1])
        throughputs[key] = float(row[3].split()[0])
    serial = throughputs[("serial, constrained cache", "1")]
    coalesced = throughputs[("service, coalescing, constrained cache", "4")]
    assert coalesced >= 2.0 * serial, (serial, coalesced)
