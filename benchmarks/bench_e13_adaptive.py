#!/usr/bin/env python3
"""E13 — adaptive lazy→eager promotion under a skewed workload.

Runs as a pytest bench (like its E10–E12 siblings) *and* as a standalone
script for the CI smoke job::

    python benchmarks/bench_e13_adaptive.py --smoke --json-dir bench-results

The standalone form writes ``BENCH_E13.json`` with a machine-checkable
``criteria`` block (steady-state speedup, cold-start ratio, warm-start
re-extraction) alongside the table itself.
"""

import sys


def _acceptance(table):
    """Pull the acceptance row out of the E13 table.

    Returns ``(speedup, cold_ratio, warm_eager_rows, warm_reextracted)``.
    """
    for row in table.rows:
        if row[0].startswith("acceptance:"):
            return (float(row[1]), float(row[2]), int(row[3]), int(row[4]))
    raise AssertionError("E13 table has no acceptance row")


def test_e13_adaptive_promotion(benchmark, demo_repo_path):
    """Benchmarked unit: one post-promotion hot query.

    Also regenerates the full E13 trajectory table and asserts the
    acceptance criteria: >=2x steady-state hot-set speedup over pure
    lazy, cold start within 1.2x, and zero re-extraction of promoted
    ranges after checkpoint() -> warm start.
    """
    import shutil
    import tempfile

    from repro.bench.harness import run_e13
    from repro.bench.workload import full_stream_query
    from repro.seismology.warehouse import SeismicWarehouse

    store = tempfile.mkdtemp(prefix="repro-e13-bench-")
    try:
        wh = SeismicWarehouse(demo_repo_path, mode="lazy",
                              cache_budget_bytes=64 * 1024,
                              enable_recycler=False, storage_path=store)
        sql = full_stream_query("ISK", "BHZ")
        for _ in range(3):
            wh.query(sql)
        wh.promote(budget_bytes=64 * 1024 * 1024)

        result = benchmark.pedantic(lambda: wh.query(sql),
                                    rounds=5, iterations=1)
        assert result.row_count == 1
        assert wh.db.last_report.rows_served_eager > 0
        assert wh.db.last_report.rows_extracted_here == 0
    finally:
        shutil.rmtree(store, ignore_errors=True)

    table = run_e13(smoke=True)
    print("\n" + table.render())
    speedup, cold_ratio, warm_eager, warm_reextracted = _acceptance(table)
    assert speedup >= 2.0, f"hot-set steady-state speedup {speedup:.2f}x < 2x"
    assert cold_ratio <= 1.2, f"cold-start ratio {cold_ratio:.2f}x > 1.2x"
    assert warm_eager > 0
    assert warm_reextracted == 0, (
        f"warm start re-extracted {warm_reextracted} promoted rows")


def main(argv=None) -> int:
    import argparse
    import os
    import platform
    import time

    from repro.bench.harness import run_e13

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced parameters (CI-sized run)")
    parser.add_argument("--rounds", type=int, default=None,
                        help="override the workload round count")
    parser.add_argument("--json-dir", metavar="DIR",
                        default="benchmarks/results",
                        help="directory for BENCH_E13.json "
                             "(default: %(default)s)")
    parser.add_argument("--no-json", action="store_true",
                        help="skip writing the JSON artifact")
    args = parser.parse_args(argv)

    started = time.perf_counter()
    table = run_e13(smoke=args.smoke, rounds=args.rounds)
    elapsed = time.perf_counter() - started
    print(table.render())
    print(f"  (experiment ran in {elapsed:.1f} s)")

    speedup, cold_ratio, warm_eager, warm_reextracted = _acceptance(table)
    if not args.no_json:
        os.makedirs(args.json_dir, exist_ok=True)
        path = os.path.join(args.json_dir, "BENCH_E13.json")
        table.to_json(
            path,
            params={"smoke": args.smoke, "rounds": args.rounds},
            elapsed_s=round(elapsed, 3),
            python=platform.python_version(),
            machine=platform.machine(),
            criteria={
                "hot_set_steady_speedup_x": speedup,
                "hot_set_steady_speedup_min": 2.0,
                "cold_start_ratio_x": cold_ratio,
                "cold_start_ratio_max": 1.2,
                "warm_start_rows_served_eager": warm_eager,
                "warm_start_rows_reextracted": warm_reextracted,
            },
        )
        print(f"  json written to {path}")

    ok = (speedup >= 2.0 and cold_ratio <= 1.2 and warm_eager > 0
          and warm_reextracted == 0)
    print(f"  acceptance: speedup {speedup:.2f}x (>=2x), cold ratio "
          f"{cold_ratio:.2f}x (<=1.2x), warm re-extraction "
          f"{warm_reextracted} (==0) -> {'PASS' if ok else 'FAIL'}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
