"""E1 — initial loading and time-to-first-answer across repository sizes.

Reproduces the demo's headline comparison (§4 items 1 and 3): lazy ETL's
metadata-only initial load versus eager ETL's full load versus external
tables, at three repository scales.
"""

from repro.bench.harness import run_e1
from repro.bench.workload import SCALES, build_scaled_repo
from repro.seismology.warehouse import SeismicWarehouse


def test_e1_initial_loading_table(benchmark):
    """The full E1 sweep; the benchmarked unit is the lazy initial load."""
    root, _manifest = build_scaled_repo(SCALES["M"])

    def lazy_load():
        return SeismicWarehouse(root, mode="lazy")

    benchmark.pedantic(lazy_load, rounds=3, iterations=1)
    table = run_e1()
    print("\n" + table.render())


def test_e1_eager_load_baseline(benchmark):
    """The eager counterpart on the same scale point (for the ratio)."""
    root, _manifest = build_scaled_repo(SCALES["M"])
    benchmark.pedantic(
        lambda: SeismicWarehouse(root, mode="eager"), rounds=1, iterations=1
    )
