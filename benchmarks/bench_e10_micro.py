"""E10 — format micro-benchmarks: the asymmetry lazy loading exploits."""

import numpy as np

from repro.bench.harness import run_e10
from repro.bench.workload import shared_demo_repo
from repro.mseed import steim
from repro.mseed.files import read_file, scan_file_headers


def test_e10_header_scan(benchmark):
    _root, manifest = shared_demo_repo()
    path = manifest.entries[0].path
    headers = benchmark(lambda: scan_file_headers(path))
    assert len(headers) == manifest.entries[0].n_records
    table = run_e10()
    print("\n" + table.render())


def test_e10_full_decode(benchmark):
    _root, manifest = shared_demo_repo()
    path = manifest.entries[0].path
    records = benchmark(lambda: read_file(path))
    assert sum(len(r.samples) for r in records) == \
        manifest.entries[0].n_samples


def test_e10_steim2_decode(benchmark):
    rng = np.random.default_rng(17)
    wave = np.cumsum(rng.integers(-60, 60, 100_000)).astype(np.int32)
    payload, count = steim.encode_steim2(wave, 20_000)
    decoded = benchmark(lambda: steim.decode_steim2(payload, count))
    assert np.array_equal(decoded, wave[:count])


def test_e10_steim2_encode(benchmark):
    rng = np.random.default_rng(18)
    wave = np.cumsum(rng.integers(-60, 60, 20_000)).astype(np.int32)
    payload, count = benchmark(lambda: steim.encode_steim2(wave, 10_000))
    assert count == len(wave)
