"""E10 — format micro-benchmarks: the asymmetry lazy loading exploits.

Also covers the SQL compile path: parse/plan/execute split and the
plan-cache speedup for prepared re-execution (unified API tentpole).
"""

import numpy as np

from repro.bench.harness import run_e10
from repro.bench.workload import shared_demo_repo
from repro.mseed import steim
from repro.mseed.files import read_file, scan_file_headers
from repro.seismology.queries import fig1_query2_template
from repro.seismology.warehouse import SeismicWarehouse


def test_e10_header_scan(benchmark):
    _root, manifest = shared_demo_repo()
    path = manifest.entries[0].path
    headers = benchmark(lambda: scan_file_headers(path))
    assert len(headers) == manifest.entries[0].n_records
    table = run_e10()
    print("\n" + table.render())


def test_e10_full_decode(benchmark):
    _root, manifest = shared_demo_repo()
    path = manifest.entries[0].path
    records = benchmark(lambda: read_file(path))
    assert sum(len(r.samples) for r in records) == \
        manifest.entries[0].n_samples


def test_e10_steim2_decode(benchmark):
    rng = np.random.default_rng(17)
    wave = np.cumsum(rng.integers(-60, 60, 100_000)).astype(np.int32)
    payload, count = steim.encode_steim2(wave, 20_000)
    decoded = benchmark(lambda: steim.decode_steim2(payload, count))
    assert np.array_equal(decoded, wave[:count])


def test_e10_steim2_encode(benchmark):
    rng = np.random.default_rng(18)
    wave = np.cumsum(rng.integers(-60, 60, 20_000)).astype(np.int32)
    payload, count = benchmark(lambda: steim.encode_steim2(wave, 10_000))
    assert count == len(wave)


def test_e10_plan_cache_speedup():
    """Prepared + plan-cached re-execution: >= 3x on the compile portion."""
    root, _manifest = shared_demo_repo()
    wh = SeismicWarehouse(root, mode="lazy")
    template = fig1_query2_template()
    _res, cold, _ = wh.db.query_with_report(
        template, {"network": "NL", "channel": "BHZ"})
    assert not cold.plan_cache_hit
    _res, warm, _ = wh.db.query_with_report(
        template, {"network": "KO", "channel": "BHZ"})
    assert warm.plan_cache_hit
    assert warm.bind_s == 0.0 and warm.optimize_s == 0.0
    assert cold.plan_s / max(warm.plan_s, 1e-9) >= 3.0


def test_e10_prepared_reexecution(benchmark):
    """Steady-state latency of a prepared, parameterised aggregate."""
    root, _manifest = shared_demo_repo()
    wh = SeismicWarehouse(root, mode="lazy")
    conn = wh.connect()
    stmt = conn.prepare(fig1_query2_template())
    params = {"network": "NL", "channel": "BHZ"}
    stmt.query(params)  # warm: plan cache + extraction cache + recycler
    rows = benchmark(lambda: stmt.query(params).rows())
    assert rows
