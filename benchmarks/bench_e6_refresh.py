"""E6 — refresh cost after repository updates: lazy vs eager."""

from repro.bench.harness import run_e6


def test_e6_refresh_table(benchmark):
    table = benchmark.pedantic(lambda: run_e6(modified_files=4),
                               rounds=1, iterations=1)
    print("\n" + table.render())
    assert len(table.rows) == 3
