"""E3 — Figure 1, query 2: min/max per NL station on channel BHZ."""

from repro.bench.harness import run_e3
from repro.seismology.queries import fig1_query2
from repro.seismology.warehouse import SeismicWarehouse


def test_e3_q2_lazy_cold(benchmark, demo_repo_path):
    def cold_query():
        wh = SeismicWarehouse(demo_repo_path, mode="lazy")
        return wh.query(fig1_query2())

    result = benchmark.pedantic(cold_query, rounds=2, iterations=1)
    assert result.row_count >= 1
    table = run_e3()
    print("\n" + table.render())


def test_e3_q2_eager_postload(benchmark, demo_repo_path):
    wh = SeismicWarehouse(demo_repo_path, mode="eager")
    result = benchmark(lambda: wh.query(fig1_query2()))
    assert result.row_count >= 1
