"""E8 — the analytical query suite across all ingestion strategies."""

from repro.bench.harness import run_e8
from repro.seismology.queries import analytical_suite
from repro.seismology.warehouse import SeismicWarehouse


def test_e8_suite_table(benchmark, demo_repo_path):
    wh = SeismicWarehouse(demo_repo_path, mode="lazy")
    suite = analytical_suite()

    def run_suite():
        for spec in suite:
            wh.query(spec.sql)

    run_suite()  # cold pass outside the measurement
    benchmark.pedantic(run_suite, rounds=2, iterations=1)
    table = run_e8()
    print("\n" + table.render())
    assert len(table.rows) == len(suite)
