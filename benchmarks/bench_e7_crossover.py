"""E7 — cumulative-cost crossover between lazy and eager loading."""

from repro.bench.harness import run_e7


def test_e7_crossover_table(benchmark):
    table = benchmark.pedantic(run_e7, rounds=1, iterations=1)
    print("\n" + table.render())
    # Lazy must lead at k=1 (time-to-first-answer is its whole point).
    first = table.rows[0]
    assert first[-1] == "lazy"
